//! Weighted max-min rate allocation with strict *egress-scoped* priority.
//!
//! This is the heart of the fluid network model. Given the set of active
//! flows it computes the instantaneous rate of each flow under:
//!
//! * per-host NIC **egress** and **ingress** capacity constraints
//!   (the switch is non-blocking, as in the paper's testbed), plus any
//!   **fabric links** on the flow's deterministic route
//!   ([`Topology::route`]) — rack uplinks/downlinks in a leaf–spine
//!   build. Each flow is filled against its own link set, so the same
//!   water-filling covers the single-switch and multi-tier cases;
//! * **strict priority at the sender's egress NIC**: flows in band *b*
//!   at an egress are served only while no flow of a band `< b` at *that
//!   same egress* still wants bandwidth — the behaviour of the `tc`
//!   htb/prio configuration the paper deploys. Priority is purely local to
//!   the sending NIC: at a *receiver's* ingress, concurrent flows share
//!   capacity without regard to the bands their senders used (real `tc`
//!   shapes outbound traffic only);
//! * **work conservation**: a high-band flow bottlenecked elsewhere (e.g. at
//!   its receiver) releases its egress's lower bands;
//! * **weighted fairness** among competing flows: bottleneck capacity is
//!   shared in proportion to flow weights. Weights model stochastic TCP
//!   unfairness (drawn per flow instance by the caller).
//!
//! The algorithm is progressive filling (water-filling) over an *eligible*
//! set: a flow is eligible when it is unfrozen and belongs to the lowest
//! (highest-priority) unfrozen band at its egress. Each round raises a
//! common level `θ` (the rate of flow `i` grows by `θ·wᵢ`) until a link
//! saturates, freezes the eligible flows on saturated links, and recomputes
//! eligibility — freezing a band-0 flow may admit band-1 flows at that
//! egress. Every round freezes at least one flow, so there are at most
//! `flows` rounds; in the workloads here, saturation freezes whole links at
//! a time and the round count tracks the number of busy links instead.

use crate::topology::Topology;
use crate::types::{Band, HostId};

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Strict-priority band at the sender's NIC (0 = highest).
    pub band: Band,
    /// Fair-share weight (must be positive).
    pub weight: f64,
    /// Optional sender-enforced rate ceiling in bytes/sec (htb `ceil`, or a
    /// §VII-style explicit rate allocation). `INFINITY` means uncapped.
    pub max_rate: f64,
}

impl FlowDemand {
    /// An uncapped demand.
    pub fn new(src: HostId, dst: HostId, band: Band, weight: f64) -> Self {
        FlowDemand {
            src,
            dst,
            band,
            weight,
            max_rate: f64::INFINITY,
        }
    }

    /// Apply a rate ceiling.
    pub fn with_max_rate(mut self, max_rate: f64) -> Self {
        assert!(max_rate > 0.0, "rate ceiling must be positive");
        self.max_rate = max_rate;
        self
    }
}

/// Numeric floor below which a link is considered saturated (bytes/sec).
const CAP_EPS: f64 = 1e-6;

/// Cumulative allocator performance counters. Monotonically increasing for
/// the lifetime of a [`MaxMinAllocator`]; read them via
/// [`MaxMinAllocator::stats`] and difference snapshots to meter a window.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Solver entry count (full and partial calls).
    pub invocations: u64,
    /// Calls that re-solved every component ([`MaxMinAllocator::allocate_into`]).
    pub full_solves: u64,
    /// Connected components actually re-solved.
    pub components_solved: u64,
    /// Components whose cached rates were kept (partial calls only).
    pub components_retained: u64,
    /// Progressive-filling rounds across all solved components.
    pub rounds: u64,
    /// Flows belonging to re-solved components (one count per solve).
    pub flows_touched: u64,
    /// Wall-clock time spent inside the solver, in nanoseconds.
    pub wall_nanos: u64,
}

/// Reusable allocator scratch space. Allocation runs on every network
/// event, so all working buffers are kept and reused across calls, and the
/// solve is decomposed by connected component of the flow/link graph: a
/// partial call ([`MaxMinAllocator::allocate_dirty_into`]) re-solves only
/// components containing a changed ("dirty") host and keeps cached rates
/// everywhere else. The full and partial paths run the identical
/// per-component solve, so their results are bit-for-bit equal.
#[derive(Debug, Default)]
pub struct MaxMinAllocator {
    // Remaining capacity per link; links are [egress 0..n) ++ [ingress 0..n)
    // ++ [fabric links 2n..2n+F) ++ [optional aggregate core at 2n+F].
    // Only links of re-solved components are (re)initialized on each call.
    cap: Vec<f64>,
    // Sum of weights of eligible flows per link, valid when the stamp
    // matches the current round (avoids clearing per round).
    weight_sum: Vec<f64>,
    ws_stamp: Vec<u64>,
    // Links with eligible flows this round (indices into `cap`).
    touched_links: Vec<u32>,
    // Per-egress minimum unfrozen band, stamp-validated like `weight_sum`.
    min_band: Vec<u16>,
    mb_stamp: Vec<u64>,
    round_stamp: u64,
    // Per-flow eligible flag (valid only for flows visited this round).
    eligible: Vec<bool>,
    // Indices of still-unfrozen flows of the component being solved,
    // in creation order (order is load-bearing: it fixes fp summation).
    unfrozen: Vec<u32>,
    // Union-find over hosts, rebuilt per call.
    parent: Vec<u32>,
    // Dense component ids in order of first appearance along `flows`.
    host_comp: Vec<u32>,
    host_comp_stamp: Vec<u64>,
    comp_stamp: u64,
    // CSR layout: component `c` owns flow indices
    // `comp_flows[comp_start[c]..comp_start[c+1]]`, creation order.
    comp_start: Vec<u32>,
    comp_flows: Vec<u32>,
    comp_of: Vec<u32>,
    // Component count of the CSR currently in the buffers, tagged with the
    // flow count it was built for; lets a caller that knows the flow list
    // is unchanged skip the per-call union-find + CSR rebuild.
    cached_structure: Option<(usize, usize)>,
    // Flow indices whose rates the last call (re)wrote — i.e. members of
    // re-solved components — in ascending order. Callers use it to update
    // only the affected downstream state (see `FluidNet::refresh_rates`).
    touched: Vec<u32>,
    // Fabric links adjacent to a dirty host's rack, rebuilt per partial
    // call. Dirtiness must propagate host → fabric tier: two flows can
    // share a rack uplink without sharing a host, so a host-only dirty
    // check would wrongly retain the neighbour's component.
    fab_dirty: Vec<bool>,
    stats: AllocStats,
}

/// Sentinel for "no unfrozen flow at this egress".
const NO_BAND: u16 = u16::MAX;

fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

impl MaxMinAllocator {
    /// Create an allocator (no per-topology state; reusable across calls).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative performance counters for this allocator.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Reset the performance counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = AllocStats::default();
    }

    /// Flow indices written by the most recent allocate call (members of
    /// re-solved components), in ascending order. Flows outside this set
    /// kept their previous rates bit-for-bit, so callers can limit
    /// write-back, telemetry diffing, and completion re-keying to exactly
    /// these indices.
    pub fn last_touched(&self) -> &[u32] {
        &self.touched
    }

    /// Compute rates (bytes/sec) for `flows`, writing into `rates`
    /// (resized to `flows.len()`). Every component is (re)solved.
    ///
    /// Panics if any flow references a host outside `topo` or has a
    /// non-positive weight.
    pub fn allocate_into(&mut self, topo: &Topology, flows: &[FlowDemand], rates: &mut Vec<f64>) {
        let started = std::time::Instant::now();
        rates.clear();
        rates.resize(flows.len(), 0.0);
        self.stats.invocations += 1;
        self.stats.full_solves += 1;
        self.touched.clear();
        if !flows.is_empty() {
            let comp_count = self.build_components(topo, flows);
            self.solve_components(topo, flows, rates, comp_count, None);
        }
        self.stats.wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Re-solve only the components that contain a host flagged in
    /// `dirty_hosts`; for every flow of an untouched component, `rates[i]`
    /// is left exactly as passed in (the caller supplies the previous
    /// allocation). Produces bit-identical results to
    /// [`MaxMinAllocator::allocate_into`] provided the rates of clean
    /// components are indeed unchanged — which the dirty-host contract
    /// guarantees: any input change to a component marks one of its hosts.
    pub fn allocate_dirty_into(
        &mut self,
        topo: &Topology,
        flows: &[FlowDemand],
        dirty_hosts: &[bool],
        rates: &mut [f64],
    ) {
        self.allocate_dirty_reuse(topo, flows, dirty_hosts, rates, false);
    }

    /// [`MaxMinAllocator::allocate_dirty_into`] with an optional shortcut:
    /// when `structure_unchanged` is true the caller asserts that `flows`
    /// has the same length, order, and endpoints as on the previous call to
    /// this allocator, so the union-find + CSR component structure from
    /// that call is still valid and is reused instead of rebuilt. Band,
    /// weight, and `max_rate` changes do not affect connectivity and are
    /// fine under the shortcut; any insertion, removal, or reordering of
    /// flows is not. The hint is ignored (and the structure rebuilt) if the
    /// flow count disagrees with the cached structure.
    pub fn allocate_dirty_reuse(
        &mut self,
        topo: &Topology,
        flows: &[FlowDemand],
        dirty_hosts: &[bool],
        rates: &mut [f64],
        structure_unchanged: bool,
    ) {
        let started = std::time::Instant::now();
        assert_eq!(
            rates.len(),
            flows.len(),
            "partial solve needs the previous rate for every flow"
        );
        assert_eq!(
            dirty_hosts.len(),
            topo.num_hosts(),
            "dirty set / topology mismatch"
        );
        self.stats.invocations += 1;
        self.touched.clear();
        if !flows.is_empty() {
            let comp_count = match self.cached_structure {
                Some((len, count)) if structure_unchanged && len == flows.len() => count,
                _ => self.build_components(topo, flows),
            };
            self.solve_components(topo, flows, rates, comp_count, Some(dirty_hosts));
        }
        self.stats.wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Convenience wrapper returning a fresh rate vector.
    pub fn allocate(&mut self, topo: &Topology, flows: &[FlowDemand]) -> Vec<f64> {
        let mut rates = Vec::new();
        self.allocate_into(topo, flows, &mut rates);
        rates
    }

    /// Group flows into connected components of the host + fabric-link
    /// graph (loopback flows join their host's component; flows sharing a
    /// routed fabric link are coupled even when they share no host; a
    /// configured aggregate core couples everything into one). Returns the
    /// component count and fills the CSR buffers; component ids follow
    /// first appearance in `flows`, and each component lists its flows in
    /// creation order.
    fn build_components(&mut self, topo: &Topology, flows: &[FlowDemand]) -> usize {
        let n = topo.num_hosts();
        let nf = topo.num_fabric_links();
        for f in flows {
            assert!(
                f.weight > 0.0 && f.weight.is_finite(),
                "flow weight must be positive, got {}",
                f.weight
            );
            assert!(
                topo.contains(f.src) && topo.contains(f.dst),
                "flow references host outside topology"
            );
        }

        self.comp_of.clear();
        self.comp_of.resize(flows.len(), 0);
        let comp_count = if topo.core_capacity().is_some() {
            // The shared core couples every flow's rate to every other's:
            // a single component (the "full solve" fallback).
            1
        } else {
            // Union-find nodes: hosts 0..n, then fabric links n..n+nf. A
            // set containing a fabric node always contains a host (unions
            // only arise from flows) and roots are minima, so every root
            // is a host id.
            self.parent.clear();
            self.parent.extend(0..(n + nf) as u32);
            for f in flows {
                if f.src != f.dst {
                    let a = uf_find(&mut self.parent, f.src.0);
                    let b = uf_find(&mut self.parent, f.dst.0);
                    if a != b {
                        self.parent[a.max(b) as usize] = a.min(b);
                    }
                    for l in topo.route(f.src, f.dst).into_iter().flatten() {
                        let a = uf_find(&mut self.parent, f.src.0);
                        let b = uf_find(&mut self.parent, n as u32 + l.0);
                        if a != b {
                            self.parent[a.max(b) as usize] = a.min(b);
                        }
                    }
                }
            }
            self.host_comp.resize(n.max(self.host_comp.len()), 0);
            self.host_comp_stamp
                .resize(n.max(self.host_comp_stamp.len()), 0);
            self.comp_stamp += 1;
            let mut count = 0u32;
            for (i, f) in flows.iter().enumerate() {
                let root = uf_find(&mut self.parent, f.src.0) as usize;
                if self.host_comp_stamp[root] != self.comp_stamp {
                    self.host_comp_stamp[root] = self.comp_stamp;
                    self.host_comp[root] = count;
                    count += 1;
                }
                self.comp_of[i] = self.host_comp[root];
            }
            count as usize
        };

        // CSR: counting sort by component id, stable in flow order.
        self.comp_start.clear();
        self.comp_start.resize(comp_count + 1, 0);
        for &c in &self.comp_of {
            self.comp_start[c as usize + 1] += 1;
        }
        for c in 0..comp_count {
            self.comp_start[c + 1] += self.comp_start[c];
        }
        self.comp_flows.clear();
        self.comp_flows.resize(flows.len(), 0);
        let mut cursor: Vec<u32> = self.comp_start[..comp_count].to_vec();
        for (i, &c) in self.comp_of.iter().enumerate() {
            let slot = cursor[c as usize];
            self.comp_flows[slot as usize] = i as u32;
            cursor[c as usize] = slot + 1;
        }
        self.cached_structure = Some((flows.len(), comp_count));
        comp_count
    }

    fn solve_components(
        &mut self,
        topo: &Topology,
        flows: &[FlowDemand],
        rates: &mut [f64],
        comp_count: usize,
        dirty_hosts: Option<&[bool]>,
    ) {
        let n = topo.num_hosts();
        let num_links = 2 * n + topo.num_fabric_links() + usize::from(topo.core_capacity().is_some());
        self.cap.resize(num_links.max(self.cap.len()), 0.0);
        self.weight_sum
            .resize(num_links.max(self.weight_sum.len()), 0.0);
        self.ws_stamp.resize(num_links.max(self.ws_stamp.len()), 0);
        self.min_band.resize(n.max(self.min_band.len()), NO_BAND);
        self.mb_stamp.resize(n.max(self.mb_stamp.len()), 0);
        self.eligible
            .resize(flows.len().max(self.eligible.len()), false);

        // A core capacity couples every flow: bandwidth freed by a departed
        // flow (whose hosts may appear in no surviving demand) can raise
        // other flows' rates through the shared core link. Any dirtiness at
        // all therefore re-solves the (single, global) component.
        let core_dirty = topo.core_capacity().is_some()
            && dirty_hosts.is_some_and(|dirty| dirty.iter().any(|&d| d));

        // Lift host dirtiness onto the fabric tier: a change at host `h`
        // frees or claims capacity on its rack's uplink *and* downlink, and
        // flows elsewhere on those links share no host with `h` — they are
        // coupled only through the link. Components are then dirty if any
        // flow touches a dirty host or routes over a dirty fabric link.
        let fab_links = topo.num_fabric_links();
        if fab_links > 0 && dirty_hosts.is_some() {
            self.fab_dirty.clear();
            self.fab_dirty.resize(fab_links, false);
            if let Some(dirty) = dirty_hosts {
                for (h, _) in dirty.iter().enumerate().filter(|(_, &d)| d) {
                    for l in topo.host_fabric_links(HostId(h as u32)).into_iter().flatten() {
                        self.fab_dirty[l.0 as usize] = true;
                    }
                }
            }
        }

        let comp_start = std::mem::take(&mut self.comp_start);
        let comp_flows = std::mem::take(&mut self.comp_flows);
        for c in 0..comp_count {
            let idxs = &comp_flows[comp_start[c] as usize..comp_start[c + 1] as usize];
            let solve = core_dirty
                || match dirty_hosts {
                    None => true,
                    Some(dirty) => idxs.iter().any(|&i| {
                        let f = &flows[i as usize];
                        dirty[f.src.0 as usize]
                            || dirty[f.dst.0 as usize]
                            || (fab_links > 0
                                && topo
                                    .route(f.src, f.dst)
                                    .into_iter()
                                    .flatten()
                                    .any(|l| self.fab_dirty[l.0 as usize]))
                    }),
                };
            if solve {
                self.touched.extend_from_slice(idxs);
                self.solve_component(topo, flows, idxs, rates);
            } else {
                self.stats.components_retained += 1;
            }
        }
        self.comp_start = comp_start;
        self.comp_flows = comp_flows;
        // CSR order groups by component; downstream consumers iterate
        // `touched` expecting ascending flow order (it keeps telemetry
        // emission order identical to a full scan over the flow list).
        self.touched.sort_unstable();
    }

    /// Progressive filling restricted to one component. `idxs` lists the
    /// component's flows in creation order; only their `rates` entries and
    /// their hosts' links are touched.
    fn solve_component(
        &mut self,
        topo: &Topology,
        flows: &[FlowDemand],
        idxs: &[u32],
        rates: &mut [f64],
    ) {
        let n = topo.num_hosts();
        // Fabric links occupy cap[2n..2n+F); the aggregate core sits after.
        let fab_base = 2 * n;
        let core_link = topo.core_capacity().map(|c| {
            let idx = fab_base + topo.num_fabric_links();
            self.cap[idx] = c.bytes_per_sec();
            idx
        });
        self.stats.components_solved += 1;
        self.stats.flows_touched += idxs.len() as u64;

        let loopback = topo.loopback().bytes_per_sec();
        self.unfrozen.clear();
        for &i in idxs {
            let f = &flows[i as usize];
            if f.src == f.dst {
                // Loopback traffic never touches the NIC.
                rates[i as usize] = loopback;
            } else {
                rates[i as usize] = 0.0;
                self.cap[f.src.0 as usize] = topo.egress(f.src).bytes_per_sec();
                self.cap[n + f.dst.0 as usize] = topo.ingress(f.dst).bytes_per_sec();
                for l in topo.route(f.src, f.dst).into_iter().flatten() {
                    self.cap[fab_base + l.0 as usize] = topo.fabric_capacity(l).bytes_per_sec();
                }
                self.unfrozen.push(i);
            }
        }

        while !self.unfrozen.is_empty() {
            self.stats.rounds += 1;
            self.round_stamp += 1;
            let round = self.round_stamp;

            // Eligibility: the lowest unfrozen band at each egress.
            for &i in &self.unfrozen {
                let f = &flows[i as usize];
                let e = f.src.0 as usize;
                let band = f.band.0 as u16;
                if self.mb_stamp[e] != round {
                    self.mb_stamp[e] = round;
                    self.min_band[e] = band;
                } else {
                    self.min_band[e] = self.min_band[e].min(band);
                }
            }
            self.touched_links.clear();
            for &i in &self.unfrozen {
                let f = &flows[i as usize];
                let el = f.band.0 as u16 == self.min_band[f.src.0 as usize];
                self.eligible[i as usize] = el;
                if el {
                    let egress = f.src.0 as usize;
                    let ingress = n + f.dst.0 as usize;
                    let [up, down] = topo.route(f.src, f.dst);
                    for l in [
                        Some(egress),
                        Some(ingress),
                        up.map(|l| fab_base + l.0 as usize),
                        down.map(|l| fab_base + l.0 as usize),
                        core_link,
                    ]
                    .into_iter()
                    .flatten()
                    {
                        if self.ws_stamp[l] != round {
                            self.ws_stamp[l] = round;
                            self.weight_sum[l] = 0.0;
                            self.touched_links.push(l as u32);
                        }
                        self.weight_sum[l] += f.weight;
                    }
                }
            }

            // The common level can rise until the tightest link saturates
            // or an eligible flow reaches its own rate ceiling.
            let mut theta = f64::INFINITY;
            for &l in &self.touched_links {
                let l = l as usize;
                theta = theta.min(self.cap[l].max(0.0) / self.weight_sum[l]);
            }
            for &i in &self.unfrozen {
                let f = &flows[i as usize];
                if self.eligible[i as usize] && f.max_rate.is_finite() {
                    theta = theta.min(((f.max_rate - rates[i as usize]).max(0.0)) / f.weight);
                }
            }
            debug_assert!(theta.is_finite(), "eligible flows but no constrained link");

            // Raise all eligible flows by theta * weight and charge the links.
            if theta > 0.0 {
                for &i in &self.unfrozen {
                    if self.eligible[i as usize] {
                        rates[i as usize] += theta * flows[i as usize].weight;
                    }
                }
                for &l in &self.touched_links {
                    let l = l as usize;
                    self.cap[l] -= theta * self.weight_sum[l];
                }
            }

            // Freeze eligible flows touching a saturated link or sitting at
            // their own ceiling; `retain` keeps creation order.
            let core_full = core_link.map(|c| self.cap[c] <= CAP_EPS).unwrap_or(false);
            let (unfrozen, eligible, cap) = (&mut self.unfrozen, &self.eligible, &self.cap);
            unfrozen.retain(|&i| {
                if !eligible[i as usize] {
                    return true;
                }
                let f = &flows[i as usize];
                let e = f.src.0 as usize;
                let g = n + f.dst.0 as usize;
                let capped =
                    f.max_rate.is_finite() && rates[i as usize] >= f.max_rate * (1.0 - 1e-12);
                let fabric_full = topo
                    .route(f.src, f.dst)
                    .into_iter()
                    .flatten()
                    .any(|l| cap[fab_base + l.0 as usize] <= CAP_EPS);
                !(cap[e] <= CAP_EPS || cap[g] <= CAP_EPS || capped || core_full || fabric_full)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Bandwidth;

    fn topo(hosts: usize, gbps: f64) -> Topology {
        Topology::uniform(hosts, Bandwidth::from_gbps(gbps))
    }

    fn demand(src: u32, dst: u32, band: u8, weight: f64) -> FlowDemand {
        FlowDemand::new(HostId(src), HostId(dst), Band(band), weight)
    }

    const LINK: f64 = 1.25e9; // 10 Gbps in bytes/sec

    #[test]
    fn single_flow_gets_full_link() {
        let t = topo(2, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[demand(0, 1, 0, 1.0)]);
        assert!((r[0] - LINK).abs() < 1.0);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        // Two flows leaving host 0 to distinct receivers share its egress.
        let r = a.allocate(&t, &[demand(0, 1, 0, 1.0), demand(0, 2, 0, 1.0)]);
        assert!((r[0] - LINK / 2.0).abs() < 1.0);
        assert!((r[1] - LINK / 2.0).abs() < 1.0);
    }

    #[test]
    fn weights_split_proportionally() {
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[demand(0, 1, 0, 3.0), demand(0, 2, 0, 1.0)]);
        assert!((r[0] - 0.75 * LINK).abs() < 1.0, "got {}", r[0]);
        assert!((r[1] - 0.25 * LINK).abs() < 1.0, "got {}", r[1]);
    }

    #[test]
    fn strict_priority_starves_lower_band_same_egress() {
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[demand(0, 1, 0, 1.0), demand(0, 2, 1, 1.0)]);
        assert!((r[0] - LINK).abs() < 1.0, "high band takes all: {}", r[0]);
        assert!(r[1] < 1.0, "low band starved: {}", r[1]);
    }

    #[test]
    fn priority_is_local_to_the_egress() {
        // Bands on different senders do not rank against each other: a
        // band-5 flow from an unconfigured host shares a common *ingress*
        // fairly with a band-0 flow from another host. Real tc shapes
        // outbound traffic only.
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[demand(0, 2, 0, 1.0), demand(1, 2, 5, 1.0)]);
        assert!((r[0] - LINK / 2.0).abs() < 1.0, "got {}", r[0]);
        assert!((r[1] - LINK / 2.0).abs() < 1.0, "got {}", r[1]);
    }

    #[test]
    fn priority_is_work_conserving() {
        // High-band flow is bottlenecked at its receiver's ingress (shared
        // with another flow into the same receiver), leaving egress headroom
        // that the low-band flow at the same sender picks up.
        let t = topo(4, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 2, 0, 1.0), // shares ingress of h2
            demand(1, 2, 0, 1.0), // shares ingress of h2
            demand(0, 3, 1, 1.0), // low band, egress of h0
        ];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - LINK / 2.0).abs() < 1.0);
        assert!((r[1] - LINK / 2.0).abs() < 1.0);
        // Low-band flow picks up the other half of h0's egress.
        assert!(
            (r[2] - LINK / 2.0).abs() < 1.0,
            "work conservation: {}",
            r[2]
        );
    }

    #[test]
    fn ingress_contention_limits_fanin() {
        // Twenty senders into one receiver (gradient-update pattern): each
        // gets 1/20 of the receiver's ingress.
        let t = topo(21, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows: Vec<_> = (1..21).map(|s| demand(s, 0, 0, 1.0)).collect();
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 20.0).abs() < 1.0, "got {x}");
        }
    }

    #[test]
    fn fanout_contention_limits_sender() {
        // One PS sending to 20 workers: each model-update flow gets 1/20 of
        // the PS egress.
        let t = topo(21, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows: Vec<_> = (1..21).map(|d| demand(0, d, 0, 1.0)).collect();
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 20.0).abs() < 1.0, "got {x}");
        }
    }

    #[test]
    fn loopback_bypasses_nic() {
        let t = topo(2, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [demand(0, 0, 0, 1.0), demand(0, 1, 0, 1.0)];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - t.loopback().bytes_per_sec()).abs() < 1.0);
        // The network flow still sees the full link: loopback charged nothing.
        assert!((r[1] - LINK).abs() < 1.0);
    }

    #[test]
    fn two_colocated_ps_fifo_share() {
        // The paper's Figure 4a: two PSes on one host, each with 2 workers,
        // same band (FIFO). All four flows share the sender egress equally.
        let t = topo(5, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 1, 0, 1.0),
            demand(0, 2, 0, 1.0),
            demand(0, 3, 0, 1.0),
            demand(0, 4, 0, 1.0),
        ];
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 4.0).abs() < 1.0);
        }
    }

    #[test]
    fn two_colocated_ps_priority_split() {
        // Same scenario under TLs-One: job A in band 0, job B in band 1.
        // Job A's flows split the full link; job B is starved meanwhile.
        let t = topo(5, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 1, 0, 1.0),
            demand(0, 2, 0, 1.0),
            demand(0, 3, 1, 1.0),
            demand(0, 4, 1, 1.0),
        ];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - LINK / 2.0).abs() < 1.0);
        assert!((r[1] - LINK / 2.0).abs() < 1.0);
        assert!(r[2] < 1.0);
        assert!(r[3] < 1.0);
    }

    #[test]
    fn three_bands_cascade() {
        // Bands 0,1,2 at one egress: band 0 bottlenecked at its ingress
        // (2 flows into one host from elsewhere), band 1 takes the rest,
        // band 2 starves.
        let t = topo(5, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 2, 0, 1.0), // with flow below, saturates h2 ingress
            demand(1, 2, 0, 1.0),
            demand(0, 3, 1, 1.0), // gets h0's leftover
            demand(0, 4, 2, 1.0), // starved: band 1 uses all leftover
        ];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - LINK / 2.0).abs() < 1.0);
        assert!((r[2] - LINK / 2.0).abs() < 1.0);
        assert!(r[3] < 1.0, "band 2 starved: {}", r[3]);
    }

    #[test]
    fn empty_flow_set() {
        let t = topo(2, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn no_link_oversubscribed_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let hosts = 8;
        let t = topo(hosts, 10.0);
        let mut a = MaxMinAllocator::new();
        for _ in 0..50 {
            let nf = rng.gen_range(1..40);
            let flows: Vec<_> = (0..nf)
                .map(|_| {
                    demand(
                        rng.gen_range(0..hosts as u32),
                        rng.gen_range(0..hosts as u32),
                        rng.gen_range(0..4),
                        rng.gen_range(0.1..4.0),
                    )
                })
                .collect();
            let r = a.allocate(&t, &flows);
            let mut eg = vec![0.0; hosts];
            let mut ing = vec![0.0; hosts];
            for (f, &x) in flows.iter().zip(&r) {
                assert!(x >= 0.0);
                if f.src != f.dst {
                    eg[f.src.0 as usize] += x;
                    ing[f.dst.0 as usize] += x;
                }
            }
            for h in 0..hosts {
                assert!(eg[h] <= LINK * (1.0 + 1e-9), "egress over: {}", eg[h]);
                assert!(ing[h] <= LINK * (1.0 + 1e-9), "ingress over: {}", ing[h]);
            }
        }
    }

    #[test]
    fn allocation_is_saturating() {
        // No flow is left with zero rate while both of its links have slack
        // (starvation must come from priority, which consumes the slack).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let hosts = 6;
        let t = topo(hosts, 10.0);
        let mut a = MaxMinAllocator::new();
        for _ in 0..20 {
            let nf = rng.gen_range(1..25);
            let flows: Vec<_> = (0..nf)
                .map(|_| {
                    let s = rng.gen_range(0..hosts as u32);
                    let mut d = rng.gen_range(0..hosts as u32);
                    if d == s {
                        d = (d + 1) % hosts as u32;
                    }
                    demand(s, d, rng.gen_range(0..3), 1.0)
                })
                .collect();
            let r = a.allocate(&t, &flows);
            let mut eg = vec![0.0; hosts];
            let mut ing = vec![0.0; hosts];
            for (f, &x) in flows.iter().zip(&r) {
                eg[f.src.0 as usize] += x;
                ing[f.dst.0 as usize] += x;
            }
            for (f, &x) in flows.iter().zip(&r) {
                let egress_full = eg[f.src.0 as usize] >= LINK * (1.0 - 1e-6);
                let ingress_full = ing[f.dst.0 as usize] >= LINK * (1.0 - 1e-6);
                assert!(
                    egress_full || ingress_full || x > 0.0,
                    "flow starved with slack available"
                );
            }
        }
    }

    #[test]
    fn repeated_allocations_are_identical() {
        // The allocator is reused across events; stale scratch state must
        // not leak between calls.
        let t = topo(4, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 1, 0, 1.3),
            demand(0, 2, 1, 0.7),
            demand(3, 2, 0, 2.0),
        ];
        let r1 = a.allocate(&t, &flows);
        let _ = a.allocate(&t, &[demand(1, 0, 2, 1.0)]);
        let r2 = a.allocate(&t, &flows);
        assert_eq!(r1, r2);
    }

    #[test]
    fn oversubscribed_core_binds_cross_host_traffic() {
        // Four disjoint host pairs, each pair's flow could run at 10 Gbps,
        // but a 2:1 oversubscribed core (20 Gbps for 40 Gbps of edge)
        // halves everyone.
        let t = crate::topology::TopologyBuilder::single_switch(8)
            .core_capacity(Bandwidth::from_gbps(20.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let flows: Vec<_> = (0..4).map(|k| demand(2 * k, 2 * k + 1, 0, 1.0)).collect();
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 2.0).abs() < 1.0, "core-shared rate {x}");
        }
    }

    #[test]
    fn non_blocking_core_changes_nothing() {
        let t = Topology::uniform(8, Bandwidth::from_gbps(10.0));
        let tc = crate::topology::TopologyBuilder::single_switch(8)
            .core_capacity(Bandwidth::from_gbps(1000.0))
            .build();
        let flows: Vec<_> = (0..4).map(|k| demand(2 * k, 2 * k + 1, 0, 1.0)).collect();
        let mut a = MaxMinAllocator::new();
        assert_eq!(a.allocate(&t, &flows), a.allocate(&tc, &flows));
    }

    #[test]
    fn rate_cap_limits_flow_and_releases_slack() {
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 1, 0, 1.0).with_max_rate(LINK / 10.0),
            demand(0, 2, 0, 1.0),
        ];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - LINK / 10.0).abs() < 1.0, "capped at ceil: {}", r[0]);
        assert!(
            (r[1] - 0.9 * LINK).abs() < 1.0,
            "slack goes to the uncapped flow: {}",
            r[1]
        );
    }

    #[test]
    fn capped_high_band_releases_lower_band() {
        // A rate-limited band-0 flow must not block band 1 (htb ceil
        // semantics: a class at its ceiling stops borrowing).
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 1, 0, 1.0).with_max_rate(LINK / 4.0),
            demand(0, 2, 1, 1.0),
        ];
        let r = a.allocate(&t, &flows);
        assert!((r[0] - LINK / 4.0).abs() < 1.0);
        assert!(
            (r[1] - 0.75 * LINK).abs() < 1.0,
            "lower band fills in: {}",
            r[1]
        );
    }

    #[test]
    fn static_rate_allocation_underutilizes() {
        // The §VII pitfall: give each of two flows a "safe" static half-link
        // allocation; when one is absent the other cannot exceed its cap and
        // half the link idles.
        let t = topo(3, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[demand(0, 1, 0, 1.0).with_max_rate(LINK / 2.0)]);
        assert!(
            (r[0] - LINK / 2.0).abs() < 1.0,
            "static allocation wastes: {}",
            r[0]
        );
    }

    #[test]
    fn uncapped_is_infinity_and_harmless() {
        let d = demand(0, 1, 0, 1.0);
        assert!(d.max_rate.is_infinite());
        let t = topo(2, 10.0);
        let mut a = MaxMinAllocator::new();
        let r = a.allocate(&t, &[d]);
        assert!((r[0] - LINK).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "ceiling must be positive")]
    fn rejects_zero_cap() {
        let _ = demand(0, 1, 0, 1.0).with_max_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn rejects_zero_weight() {
        let t = topo(2, 10.0);
        let mut a = MaxMinAllocator::new();
        let _ = a.allocate(&t, &[demand(0, 1, 0, 0.0)]);
    }

    #[test]
    fn last_touched_lists_resolved_flows_in_order() {
        let t = topo(6, 10.0);
        let mut a = MaxMinAllocator::new();
        // Three disjoint components: (0,1), (2,3), (4,5).
        let flows = [demand(0, 1, 0, 1.0), demand(2, 3, 0, 1.0), demand(4, 5, 0, 1.0)];
        let mut rates = a.allocate(&t, &flows);
        assert_eq!(a.last_touched(), &[0, 1, 2], "full solve touches all");

        let mut dirty = vec![false; 6];
        dirty[2] = true;
        a.allocate_dirty_into(&t, &flows, &dirty, &mut rates);
        assert_eq!(a.last_touched(), &[1], "only the dirty component");
    }

    #[test]
    fn oversubscribed_uplink_binds_cross_rack_traffic() {
        // 2 racks × 4 hosts, 4:1 oversubscription: each uplink carries
        // 4 × 10 / 4 = 10 Gbps. Four cross-rack flows out of rack 0 share
        // its single uplink even though their NICs could carry 40 Gbps.
        let t = crate::topology::TopologyBuilder::leaf_spine(2, 4, 4.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let flows: Vec<_> = (0..4).map(|k| demand(k, 4 + k, 0, 1.0)).collect();
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 4.0).abs() < 1.0, "uplink-shared rate {x}");
        }
    }

    #[test]
    fn rack_local_traffic_ignores_fabric() {
        let t = crate::topology::TopologyBuilder::leaf_spine(2, 4, 4.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        // Same-rack flow runs at full NIC speed regardless of oversub.
        let r = a.allocate(&t, &[demand(0, 1, 0, 1.0)]);
        assert!((r[0] - LINK).abs() < 1.0, "got {}", r[0]);
    }

    #[test]
    fn downlink_contention_limits_fanin_across_racks() {
        // 2:1 oversub, 2 racks × 4 hosts: downlink = 20 Gbps. Four senders
        // in rack 0 target distinct hosts in rack 1; NICs would allow
        // 4 × 10 Gbps but the shared downlink halves everyone.
        let t = crate::topology::TopologyBuilder::leaf_spine(2, 4, 2.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let flows: Vec<_> = (0..4).map(|k| demand(k, 4 + k, 0, 1.0)).collect();
        let r = a.allocate(&t, &flows);
        for &x in &r {
            assert!((x - LINK / 2.0).abs() < 1.0, "downlink-shared rate {x}");
        }
    }

    #[test]
    fn one_to_one_leaf_spine_matches_single_switch_bitwise() {
        let flat = topo(8, 10.0);
        let ls = crate::topology::TopologyBuilder::leaf_spine(2, 4, 1.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut a = MaxMinAllocator::new();
        let mut b = MaxMinAllocator::new();
        for _ in 0..20 {
            let nf = rng.gen_range(1..30);
            let flows: Vec<_> = (0..nf)
                .map(|_| {
                    demand(
                        rng.gen_range(0..8),
                        rng.gen_range(0..8),
                        rng.gen_range(0..4),
                        rng.gen_range(0.1..4.0),
                    )
                })
                .collect();
            assert_eq!(a.allocate(&flat, &flows), b.allocate(&ls, &flows));
        }
    }

    #[test]
    fn fabric_coupling_joins_components_across_racks() {
        // Two flows share rack 0's uplink but no host; dirtying one must
        // re-solve the other (they are one component), while a rack-local
        // pair elsewhere stays cached.
        let t = crate::topology::TopologyBuilder::leaf_spine(2, 4, 2.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let flows = [
            demand(0, 4, 0, 1.0), // rack0 → rack1, via uplink 0
            demand(1, 5, 0, 1.0), // rack0 → rack1, via uplink 0
            demand(6, 7, 0, 1.0), // rack1-local
        ];
        let mut rates = a.allocate(&t, &flows);
        let mut dirty = vec![false; 8];
        dirty[0] = true;
        a.allocate_dirty_into(&t, &flows, &dirty, &mut rates);
        assert_eq!(
            a.last_touched(),
            &[0, 1],
            "uplink-coupled flows form one component; local pair cached"
        );
    }

    #[test]
    fn dirty_reuse_on_fabric_matches_full_solve() {
        let t = crate::topology::TopologyBuilder::leaf_spine(3, 3, 2.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let mut flows = vec![
            demand(0, 3, 0, 1.2), // rack0 → rack1
            demand(1, 4, 1, 0.8), // rack0 → rack1
            demand(6, 8, 0, 1.0), // rack2-local
        ];
        let mut rates = a.allocate(&t, &flows);
        for f in &mut flows {
            f.band = Band((f.band.0 + 1) % 3);
        }
        let mut dirty = vec![false; 9];
        dirty[0] = true;
        dirty[1] = true;
        a.allocate_dirty_reuse(&t, &flows, &dirty, &mut rates, true);
        let fresh = MaxMinAllocator::new().allocate(&t, &flows);
        assert_eq!(rates, fresh, "fabric dirty-reuse diverged");
    }

    #[test]
    fn fabric_neighbour_is_resolved_when_link_mate_departs() {
        // Regression: flows 0→2 and 1→3 share rack0's uplink (and rack1's
        // downlink) but no host. When 0→2 departs, only hosts {0, 2} are
        // dirty — a host-only dirty check would retain 1→3's component at
        // its stale uplink half-share instead of letting it claim the freed
        // fabric capacity.
        let t = crate::topology::TopologyBuilder::leaf_spine(2, 2, 4.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        let mut a = MaxMinAllocator::new();
        let both = [demand(0, 2, 0, 1.0), demand(1, 3, 0, 1.0)];
        let rates = a.allocate(&t, &both);
        // 4:1 oversubscription: uplink = 2·LINK/4 = LINK/2, split two ways.
        assert!((rates[0] - LINK / 4.0).abs() < 1.0, "got {}", rates[0]);
        assert!((rates[1] - LINK / 4.0).abs() < 1.0, "got {}", rates[1]);

        let survivor = [both[1]];
        let mut partial = vec![rates[1]];
        let mut dirty = vec![false; 4];
        dirty[0] = true;
        dirty[2] = true;
        a.allocate_dirty_into(&t, &survivor, &dirty, &mut partial);
        let fresh = MaxMinAllocator::new().allocate(&t, &survivor);
        assert!(
            (fresh[0] - LINK / 2.0).abs() < 1.0,
            "survivor alone fills the uplink: {}",
            fresh[0]
        );
        assert_eq!(
            partial[0].to_bits(),
            fresh[0].to_bits(),
            "partial solve kept a stale fabric share: {} vs {}",
            partial[0],
            fresh[0]
        );
        assert_eq!(a.last_touched(), &[0], "survivor's component re-solved");
    }

    #[test]
    fn structure_reuse_matches_rebuild_bit_for_bit() {
        let t = topo(6, 10.0);
        let mut a = MaxMinAllocator::new();
        let mut flows = vec![
            demand(0, 1, 0, 1.3),
            demand(0, 2, 1, 0.7),
            demand(0, 3, 0, 2.0),
            demand(4, 5, 0, 1.0),
        ];
        let mut rates = a.allocate(&t, &flows);

        // A band rotation changes no endpoints: the reuse path must agree
        // exactly with a from-scratch allocator seeing the same demands.
        for f in &mut flows {
            f.band = Band((f.band.0 + 1) % 3);
        }
        let mut dirty = vec![false; 6];
        dirty[0] = true;
        a.allocate_dirty_reuse(&t, &flows, &dirty, &mut rates, true);

        let fresh = MaxMinAllocator::new().allocate(&t, &flows);
        assert_eq!(rates[..3], fresh[..3], "reused structure diverged");
        assert_eq!(a.last_touched(), &[0, 1, 2]);

        // A stale hint with a different flow count is ignored, not trusted.
        flows.push(demand(1, 4, 0, 1.0));
        rates.push(0.0);
        let mut dirty = vec![false; 6];
        dirty[1] = true;
        dirty[4] = true;
        a.allocate_dirty_reuse(&t, &flows, &dirty, &mut rates, true);
        let fresh = MaxMinAllocator::new().allocate(&t, &flows);
        assert_eq!(rates, fresh, "count mismatch must force a rebuild");
    }
}
