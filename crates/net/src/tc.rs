//! Linux `tc` configuration model and script generation.
//!
//! The paper implements TensorLights "with the hierarchical token bucket
//! (htb) available in the tc tool on Linux", classifying a job's model-update
//! traffic by its PS's TCP source port. This module models that
//! configuration declaratively and renders the literal `tc` command lines:
//! the artifact a real deployment would execute on each host with colocated
//! PSes. It also renders minimal *reconfiguration* diffs, which is what the
//! TLs-RR controller applies every rotation interval.
//!
//! The generated layout follows the common htb + prio pattern:
//!
//! ```text
//! 1:        htb root (default -> lowest band class)
//! └─ 1:1    htb parent class at link rate
//!    ├─ 1:10  band 0 (prio 0, highest)
//!    ├─ 1:11  band 1 (prio 1)
//!    └─ ...   up to TC_BAND_LIMIT bands
//! ```
//!
//! with one `u32` filter per PS port steering `ip sport <port>` into its
//! band's class.

use crate::types::{Band, Bandwidth};
use serde::{Deserialize, Serialize};

/// Class id of the htb parent under root qdisc `1:`.
const PARENT_CLASS: u32 = 1;
/// Class minor ids for bands start here (band 0 -> 1:10).
const BAND_CLASS_BASE: u32 = 10;

/// Port→band filter assignments, sorted by port.
///
/// A NIC carries one filter per colocated PS — a handful of entries that
/// the TLs-RR controller diffs on every rotation. A sorted `Vec` with
/// binary search keeps the whole set in one or two cache lines, where the
/// `BTreeMap` it replaced paid a node allocation per entry; iteration
/// order (ascending port) is unchanged, so rendered scripts are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PortBands(Vec<(u16, Band)>);

impl PortBands {
    /// An empty assignment set.
    pub fn new() -> Self {
        PortBands(Vec::new())
    }

    /// Insert or replace a port's band; returns the previous band if any.
    pub fn insert(&mut self, port: u16, band: Band) -> Option<Band> {
        match self.0.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => Some(std::mem::replace(&mut self.0[i].1, band)),
            Err(i) => {
                self.0.insert(i, (port, band));
                None
            }
        }
    }

    /// The band assigned to `port`, if any.
    pub fn get(&self, port: u16) -> Option<Band> {
        self.0
            .binary_search_by_key(&port, |&(p, _)| p)
            .ok()
            .map(|i| self.0[i].1)
    }

    /// Remove a port's assignment; returns its band if it was present.
    pub fn remove(&mut self, port: u16) -> Option<Band> {
        self.0
            .binary_search_by_key(&port, |&(p, _)| p)
            .ok()
            .map(|i| self.0.remove(i).1)
    }

    /// True if `port` has an assignment.
    pub fn contains(&self, port: u16) -> bool {
        self.get(port).is_some()
    }

    /// Number of assigned ports.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no ports are assigned.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate assignments in ascending port order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, Band)> + '_ {
        self.0.iter().copied()
    }
}

/// A full htb configuration for one NIC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcConfig {
    /// Network device name (e.g. `eth0`).
    pub dev: String,
    /// Link rate used for the root class rate/ceil.
    pub link: Bandwidth,
    /// Number of priority bands to create (1..=8; the paper uses up to 6).
    pub num_bands: u8,
    /// Map from PS TCP source port to its assigned band.
    pub port_bands: PortBands,
}

impl TcConfig {
    /// Create a config with `num_bands` bands and no filters yet.
    pub fn new(dev: impl Into<String>, link: Bandwidth, num_bands: u8) -> Self {
        assert!(
            Band::valid_band_count(num_bands),
            "tc prio supports 1..={} bands; got {num_bands}",
            Band::MAX_TC_BANDS
        );
        TcConfig {
            dev: dev.into(),
            link,
            num_bands,
            port_bands: PortBands::new(),
        }
    }

    /// Assign a PS port to a band. Panics if the band exceeds `num_bands`.
    pub fn assign_port(&mut self, port: u16, band: Band) {
        assert!(
            band.0 < self.num_bands,
            "band {band} out of range (have {} bands)",
            self.num_bands
        );
        self.port_bands.insert(port, band);
    }

    /// The class id string for a band, e.g. `1:10` for band 0.
    pub fn class_of(band: Band) -> String {
        format!("{}:{}", PARENT_CLASS, BAND_CLASS_BASE + band.0 as u32)
    }

    fn rate_str(&self) -> String {
        // tc accepts fractional gbit, but mbit keeps it integral and exact
        // for common link speeds.
        format!("{:.0}mbit", self.link.gbps() * 1000.0)
    }

    /// Render the full setup script (qdisc + classes + filters), one command
    /// per line, in deterministic order.
    pub fn render_setup(&self) -> Vec<String> {
        let mut out = Vec::new();
        let dev = &self.dev;
        let rate = self.rate_str();
        let default_class = BAND_CLASS_BASE + (self.num_bands - 1) as u32;
        out.push(format!(
            "tc qdisc add dev {dev} root handle 1: htb default {default_class}"
        ));
        out.push(format!(
            "tc class add dev {dev} parent 1: classid 1:{PARENT_CLASS} htb rate {rate} ceil {rate}"
        ));
        for b in 0..self.num_bands {
            let classid = BAND_CLASS_BASE + b as u32;
            // Every class may borrow up to the full link (work conserving);
            // the tiny guaranteed rate keeps htb happy, priority does the work.
            out.push(format!(
                "tc class add dev {dev} parent 1:{PARENT_CLASS} classid 1:{classid} htb \
                 rate 1mbit ceil {rate} prio {b}"
            ));
        }
        for (port, band) in self.port_bands.iter() {
            out.push(self.filter_add_cmd(port, band));
        }
        out
    }

    /// Render the teardown command (removes the whole hierarchy).
    pub fn render_teardown(&self) -> Vec<String> {
        vec![format!("tc qdisc del dev {} root", self.dev)]
    }

    fn filter_add_cmd(&self, port: u16, band: Band) -> String {
        format!(
            "tc filter add dev {} protocol ip parent 1:0 prio 1 u32 \
             match ip sport {} 0xffff flowid {}",
            self.dev,
            port,
            Self::class_of(band)
        )
    }

    fn filter_del_cmd(&self, port: u16, band: Band) -> String {
        format!(
            "tc filter del dev {} protocol ip parent 1:0 prio 1 u32 \
             match ip sport {} 0xffff flowid {}",
            self.dev,
            port,
            Self::class_of(band)
        )
    }

    /// Render the minimal command sequence that reconfigures `self` into
    /// `new`: deleted filters, changed filters (delete + add), added filters.
    /// This is what a TLs-RR rotation executes every interval `T` — note it
    /// never touches the qdisc or classes, only filters.
    ///
    /// Panics if `new` differs in device, band count, or link rate (those
    /// require a teardown + setup, not a live reconfiguration).
    pub fn render_reconfigure(&self, new: &TcConfig) -> Vec<String> {
        assert_eq!(self.dev, new.dev, "cannot diff across devices");
        assert_eq!(self.num_bands, new.num_bands, "band count changed");
        let mut out = Vec::new();
        for (port, band) in self.port_bands.iter() {
            match new.port_bands.get(port) {
                None => out.push(self.filter_del_cmd(port, band)),
                Some(nb) if nb != band => {
                    out.push(self.filter_del_cmd(port, band));
                    out.push(new.filter_add_cmd(port, nb));
                }
                Some(_) => {}
            }
        }
        for (port, band) in new.port_bands.iter() {
            if !self.port_bands.contains(port) {
                out.push(new.filter_add_cmd(port, band));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcConfig {
        let mut c = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), 3);
        c.assign_port(2222, Band(0));
        c.assign_port(2223, Band(1));
        c
    }

    #[test]
    fn port_bands_sorted_vec_semantics() {
        let mut pb = PortBands::new();
        assert!(pb.is_empty());
        pb.insert(3000, Band(2));
        pb.insert(1000, Band(0));
        pb.insert(2000, Band(1));
        assert_eq!(pb.insert(2000, Band(2)), Some(Band(1)), "insert replaces");
        assert_eq!(pb.len(), 3);
        assert_eq!(pb.get(1000), Some(Band(0)));
        assert_eq!(pb.get(1500), None);
        assert!(pb.contains(3000));
        let ports: Vec<u16> = pb.iter().map(|(p, _)| p).collect();
        assert_eq!(ports, vec![1000, 2000, 3000], "iteration is port-sorted");
        assert_eq!(pb.remove(1000), Some(Band(0)));
        assert_eq!(pb.remove(1000), None);
        assert_eq!(pb.len(), 2);
    }

    #[test]
    fn setup_script_structure() {
        let lines = cfg().render_setup();
        assert_eq!(
            lines[0],
            "tc qdisc add dev eth0 root handle 1: htb default 12"
        );
        assert!(lines[1].contains("classid 1:1 htb rate 10000mbit ceil 10000mbit"));
        // Three band classes with ascending prio.
        assert!(lines[2].contains("classid 1:10") && lines[2].contains("prio 0"));
        assert!(lines[3].contains("classid 1:11") && lines[3].contains("prio 1"));
        assert!(lines[4].contains("classid 1:12") && lines[4].contains("prio 2"));
        // Two filters, ordered by port.
        assert!(lines[5].contains("sport 2222") && lines[5].contains("flowid 1:10"));
        assert!(lines[6].contains("sport 2223") && lines[6].contains("flowid 1:11"));
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn band_classes_borrow_to_full_link() {
        let lines = cfg().render_setup();
        for l in &lines[2..5] {
            assert!(l.contains("ceil 10000mbit"), "work conserving: {l}");
        }
    }

    #[test]
    fn teardown_single_command() {
        assert_eq!(cfg().render_teardown(), vec!["tc qdisc del dev eth0 root"]);
    }

    #[test]
    fn class_naming() {
        assert_eq!(TcConfig::class_of(Band(0)), "1:10");
        assert_eq!(TcConfig::class_of(Band(5)), "1:15");
    }

    #[test]
    fn reconfigure_rotation_swaps_filters_only() {
        let old = cfg();
        let mut new = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), 3);
        new.assign_port(2222, Band(1));
        new.assign_port(2223, Band(0));
        let diff = old.render_reconfigure(&new);
        // Two ports changed: each needs one del and one add.
        assert_eq!(diff.len(), 4);
        assert!(diff.iter().all(|l| l.contains("filter")));
        assert!(diff
            .iter()
            .any(|l| l.contains("del") && l.contains("sport 2222")));
        assert!(diff
            .iter()
            .any(|l| l.contains("add") && l.contains("sport 2222") && l.contains("1:11")));
    }

    #[test]
    fn reconfigure_noop_is_empty() {
        let a = cfg();
        let b = cfg();
        assert!(a.render_reconfigure(&b).is_empty());
    }

    #[test]
    fn reconfigure_handles_arrival_and_departure() {
        let old = cfg();
        let mut new = cfg();
        assert_eq!(new.port_bands.remove(2223), Some(Band(1))); // job departed
        new.assign_port(2224, Band(2)); // job arrived
        let diff = old.render_reconfigure(&new);
        assert_eq!(diff.len(), 2);
        assert!(diff[0].contains("del") && diff[0].contains("sport 2223"));
        assert!(diff[1].contains("add") && diff[1].contains("sport 2224"));
    }

    #[test]
    #[should_panic(expected = "band count changed")]
    fn reconfigure_rejects_band_count_change() {
        let a = cfg();
        let b = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), 4);
        let _ = a.render_reconfigure(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assign_rejects_band_beyond_limit() {
        let mut c = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), 2);
        c.assign_port(1000, Band(2));
    }

    #[test]
    fn single_band_config_renders() {
        let mut c = TcConfig::new("eth1", Bandwidth::from_gbps(25.0), 1);
        c.assign_port(9999, Band(0));
        let lines = c.render_setup();
        assert_eq!(
            lines[0],
            "tc qdisc add dev eth1 root handle 1: htb default 10"
        );
        assert!(lines[1].contains("rate 25000mbit"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot diff across devices")]
    fn reconfigure_rejects_device_change() {
        let a = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), 3);
        let b = TcConfig::new("eth1", Bandwidth::from_gbps(10.0), 3);
        let _ = a.render_reconfigure(&b);
    }

    #[test]
    fn six_band_limit_matches_paper() {
        // The paper: "we only use up to six distinct priority bands".
        let c = TcConfig::new("eth0", Bandwidth::from_gbps(10.0), Band::TC_BAND_LIMIT);
        let lines = c.render_setup();
        assert_eq!(lines.len(), 2 + 6);
    }
}
