//! Cluster network topology and deterministic routing.
//!
//! The paper's testbed is a single-switch topology: N hosts, each with one
//! NIC, all links the same speed, a non-blocking switch. The contended
//! resources there are exactly the per-host NIC egress and ingress
//! capacities. This model generalizes that shape with an optional
//! *leaf–spine fabric tier*: hosts are grouped into racks, and each rack
//! reaches a non-blocking spine through an uplink/downlink pair sized by
//! an oversubscription factor. A cross-rack flow therefore traverses four
//! modeled links — source NIC egress, source-rack uplink, destination-rack
//! downlink, destination NIC ingress — while rack-local flows see only the
//! two NICs.
//!
//! Topology description and routing are deliberately separate concerns
//! (the same split dslab-network draws between its topology model and its
//! routing component): the link tables say what capacity exists, and
//! [`Topology::route`] derives a flow's fabric path as a pure function of
//! its endpoints. All engines — fluid and packet — consume the same route,
//! so the two backends always agree on which links a flow loads.
//!
//! Construction goes through [`TopologyBuilder`]; the historical
//! [`Topology::uniform`] constructor remains as a thin shim for the paper
//! path.

use crate::types::{Bandwidth, HostId, LinkId};
use serde::{Deserialize, Serialize};

/// A cluster topology: per-host NIC capacities, an optional per-rack
/// fabric tier, plus an optional aggregate core capacity.
///
/// The paper's testbed switch is non-blocking (no fabric links, no core
/// constraint); the fabric tier models the oversubscribed leaf–spine
/// networks common in production clusters, where TensorLights' end-host
/// priorities meet a contention point they cannot control. The older
/// aggregate `core` knob is retained for the PR-3 ablation but superseded
/// by explicit fabric links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    egress: Vec<Bandwidth>,
    ingress: Vec<Bandwidth>,
    /// Rate applied to flows whose source and destination host coincide
    /// (loopback traffic never touches the NIC).
    loopback: Bandwidth,
    /// Aggregate capacity of the switch fabric (None = non-blocking).
    core: Option<Bandwidth>,
    /// Shared fabric links, laid out per rack as `[up, down]` pairs: rack
    /// `r`'s uplink is `LinkId(2r)`, its downlink `LinkId(2r + 1)`. Empty
    /// means a non-blocking fabric (every pre-fabric topology deserializes
    /// to this).
    #[serde(default)]
    fabric: Vec<Bandwidth>,
    /// Rack membership per host. Empty means single-switch (all hosts in
    /// one implicit rack). May be populated with `fabric` empty: a 1:1
    /// leaf–spine records rack grouping but needs no fabric constraint.
    #[serde(default)]
    rack_of: Vec<u32>,
}

impl Topology {
    /// A uniform single-switch topology: `hosts` hosts, all NICs at `link`
    /// speed. Matches the paper's testbed shape (21 hosts, 10 Gbps). Thin
    /// shim over [`TopologyBuilder::single_switch`].
    pub fn uniform(hosts: usize, link: Bandwidth) -> Self {
        TopologyBuilder::single_switch(hosts).link(link).build()
    }

    /// A topology with per-host link speeds (heterogeneous NICs).
    pub fn heterogeneous(egress: Vec<Bandwidth>, ingress: Vec<Bandwidth>) -> Self {
        assert!(!egress.is_empty(), "topology needs at least one host");
        assert_eq!(
            egress.len(),
            ingress.len(),
            "egress/ingress host counts differ"
        );
        let mut t = TopologyBuilder::single_switch(egress.len()).build();
        t.egress = egress;
        t.ingress = ingress;
        t
    }

    /// Override the loopback (same-host) transfer rate.
    pub fn with_loopback(mut self, loopback: Bandwidth) -> Self {
        self.loopback = loopback;
        self
    }

    /// Constrain the switch fabric to an aggregate capacity (an
    /// oversubscribed core). All cross-host traffic shares it.
    #[deprecated(
        since = "0.6.0",
        note = "use TopologyBuilder::leaf_spine for an explicit fabric tier, \
                or TopologyBuilder::core_capacity for the aggregate knob"
    )]
    pub fn with_core_capacity(mut self, core: Bandwidth) -> Self {
        self.core = Some(core);
        self
    }

    /// The aggregate fabric capacity, if constrained.
    pub fn core_capacity(&self) -> Option<Bandwidth> {
        self.core
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.egress.len()
    }

    /// True if `h` is a valid host id.
    pub fn contains(&self, h: HostId) -> bool {
        (h.0 as usize) < self.egress.len()
    }

    /// Egress (outbound) capacity of host `h`.
    pub fn egress(&self, h: HostId) -> Bandwidth {
        self.egress[h.0 as usize]
    }

    /// Ingress (inbound) capacity of host `h`.
    pub fn ingress(&self, h: HostId) -> Bandwidth {
        self.ingress[h.0 as usize]
    }

    /// Loopback rate for same-host transfers.
    pub fn loopback(&self) -> Bandwidth {
        self.loopback
    }

    /// Number of shared fabric links (0 for single-switch and 1:1
    /// leaf–spine topologies).
    pub fn num_fabric_links(&self) -> usize {
        self.fabric.len()
    }

    /// Capacity of fabric link `l`.
    pub fn fabric_capacity(&self, l: LinkId) -> Bandwidth {
        self.fabric[l.0 as usize]
    }

    /// Human-readable label for fabric link `l` (`rack{r}.up` /
    /// `rack{r}.down`), used for telemetry gauge names.
    pub fn fabric_label(&self, l: LinkId) -> String {
        let dir = if l.0.is_multiple_of(2) { "up" } else { "down" };
        format!("rack{}.{dir}", l.0 / 2)
    }

    /// Rack of host `h`, or `None` on a single-switch topology.
    pub fn rack_of(&self, h: HostId) -> Option<u32> {
        self.rack_of.get(h.0 as usize).copied()
    }

    /// Number of racks (0 when rack grouping is not modeled).
    pub fn num_racks(&self) -> usize {
        self.rack_of.iter().map(|&r| r as usize + 1).max().unwrap_or(0)
    }

    /// The fabric links a `src → dst` flow traverses, in traversal order:
    /// `[source-rack uplink, destination-rack downlink]`. Loopback,
    /// rack-local, and non-blocking-fabric flows traverse none. The result
    /// is a pure function of the endpoints — deterministic path routing.
    pub fn route(&self, src: HostId, dst: HostId) -> [Option<LinkId>; 2] {
        if src == dst || self.fabric.is_empty() {
            return [None, None];
        }
        let sr = self.rack_of[src.0 as usize];
        let dr = self.rack_of[dst.0 as usize];
        if sr == dr {
            [None, None]
        } else {
            [Some(LinkId(2 * sr)), Some(LinkId(2 * dr + 1))]
        }
    }

    /// The fabric links any traffic of host `h` can occupy: its rack's
    /// `[uplink, downlink]`, or `[None, None]` on a single-switch /
    /// non-blocking topology. Used to propagate per-host dirtiness to the
    /// fabric tier (a change at `h` can free or claim capacity on both).
    pub fn host_fabric_links(&self, h: HostId) -> [Option<LinkId>; 2] {
        if self.fabric.is_empty() {
            return [None, None];
        }
        let r = self.rack_of[h.0 as usize];
        [Some(LinkId(2 * r)), Some(LinkId(2 * r + 1))]
    }

    /// Replace host `h`'s NIC capacities (both directions). This is the
    /// fault layer's degradation knob; callers driving a live
    /// [`crate::FluidNet`] must go through
    /// [`crate::FluidNet::set_host_capacity`] so in-flight allocations
    /// are re-solved.
    pub fn set_host_capacity(&mut self, h: HostId, egress: Bandwidth, ingress: Bandwidth) {
        assert!(self.contains(h), "host {h:?} not in topology");
        self.egress[h.0 as usize] = egress;
        self.ingress[h.0 as usize] = ingress;
    }

    /// Iterator over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.egress.len() as u32).map(HostId)
    }

    /// Iterator over all fabric link ids.
    pub fn fabric_links(&self) -> impl Iterator<Item = LinkId> {
        (0..self.fabric.len() as u32).map(LinkId)
    }
}

/// Fluent builder for [`Topology`]: pick a shape (single switch or
/// leaf–spine), then refine link speeds and per-host NIC overrides.
///
/// ```
/// use tl_net::{Bandwidth, HostId, topology::TopologyBuilder};
/// let t = TopologyBuilder::leaf_spine(3, 7, 4.0)
///     .link(Bandwidth::from_gbps(10.0))
///     .host_nic(HostId(0), Bandwidth::from_gbps(25.0), Bandwidth::from_gbps(25.0))
///     .build();
/// assert_eq!(t.num_hosts(), 21);
/// assert_eq!(t.num_fabric_links(), 6); // 3 racks × {up, down}
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    hosts: usize,
    /// `(racks, hosts_per_rack, oversub)` when a leaf–spine fabric is
    /// requested.
    shape: Option<(u32, u32, f64)>,
    link: Bandwidth,
    loopback: Bandwidth,
    core: Option<Bandwidth>,
    nic_overrides: Vec<(HostId, Bandwidth, Bandwidth)>,
}

impl TopologyBuilder {
    const DEFAULT_LINK_GBPS: f64 = 10.0;
    const DEFAULT_LOOPBACK_GBPS: f64 = 400.0;

    fn base(hosts: usize, shape: Option<(u32, u32, f64)>) -> Self {
        assert!(hosts > 0, "topology needs at least one host");
        TopologyBuilder {
            hosts,
            shape,
            link: Bandwidth::from_gbps(Self::DEFAULT_LINK_GBPS),
            loopback: Bandwidth::from_gbps(Self::DEFAULT_LOOPBACK_GBPS),
            core: None,
            nic_overrides: Vec::new(),
        }
    }

    /// A single non-blocking switch over `hosts` hosts — the paper's
    /// testbed shape. NICs default to 10 Gbps; override with [`link`].
    ///
    /// [`link`]: TopologyBuilder::link
    pub fn single_switch(hosts: usize) -> Self {
        Self::base(hosts, None)
    }

    /// A two-tier leaf–spine fabric: `racks × hosts_per_rack` hosts, each
    /// rack joined to a non-blocking spine by an uplink/downlink pair of
    /// capacity `hosts_per_rack × link / oversub`. An `oversub` of 1.0 is
    /// a fully-provisioned fabric: rack grouping is recorded (the
    /// hierarchical traffic pattern needs it) but no fabric links are
    /// emitted, because a link that can never bind is not a constraint —
    /// this is what makes a 1:1 leaf–spine bitwise-identical to the
    /// equivalent single switch.
    pub fn leaf_spine(racks: u32, hosts_per_rack: u32, oversub: f64) -> Self {
        assert!(racks > 0 && hosts_per_rack > 0, "leaf_spine needs hosts");
        assert!(
            oversub >= 1.0 && oversub.is_finite(),
            "oversubscription factor must be >= 1.0, got {oversub}"
        );
        Self::base(
            racks as usize * hosts_per_rack as usize,
            Some((racks, hosts_per_rack, oversub)),
        )
    }

    /// Set the uniform NIC speed (default 10 Gbps). In a leaf–spine build
    /// this also sizes the fabric links: uplink capacity is
    /// `hosts_per_rack × link / oversub`.
    pub fn link(mut self, link: Bandwidth) -> Self {
        self.link = link;
        self
    }

    /// Override the loopback (same-host) transfer rate.
    pub fn loopback(mut self, loopback: Bandwidth) -> Self {
        self.loopback = loopback;
        self
    }

    /// Override one host's NIC capacities (heterogeneous clusters).
    /// Fabric-link sizing keeps using the uniform [`link`] speed — uplink
    /// provisioning is a property of the fabric design, not of any one
    /// host's NIC.
    ///
    /// [`link`]: TopologyBuilder::link
    pub fn host_nic(mut self, h: HostId, egress: Bandwidth, ingress: Bandwidth) -> Self {
        self.nic_overrides.push((h, egress, ingress));
        self
    }

    /// Constrain the aggregate core capacity shared by all cross-host
    /// traffic (the PR-3 ablation knob). Prefer [`leaf_spine`] for a
    /// structured fabric.
    ///
    /// [`leaf_spine`]: TopologyBuilder::leaf_spine
    pub fn core_capacity(mut self, core: Bandwidth) -> Self {
        self.core = Some(core);
        self
    }

    /// Materialize the topology.
    pub fn build(self) -> Topology {
        let (fabric, rack_of) = match self.shape {
            None => (Vec::new(), Vec::new()),
            Some((racks, hpr, oversub)) => {
                let rack_of: Vec<u32> =
                    (0..self.hosts).map(|h| h as u32 / hpr).collect();
                let fabric = if oversub > 1.0 {
                    let cap = Bandwidth::from_bytes_per_sec(
                        hpr as f64 * self.link.bytes_per_sec() / oversub,
                    );
                    vec![cap; 2 * racks as usize]
                } else {
                    Vec::new()
                };
                (fabric, rack_of)
            }
        };
        let mut t = Topology {
            egress: vec![self.link; self.hosts],
            ingress: vec![self.link; self.hosts],
            loopback: self.loopback,
            core: self.core,
            fabric,
            rack_of,
        };
        for (h, e, i) in self.nic_overrides {
            t.set_host_capacity(h, e, i);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology() {
        let t = Topology::uniform(21, Bandwidth::from_gbps(10.0));
        assert_eq!(t.num_hosts(), 21);
        assert!((t.egress(HostId(0)).gbps() - 10.0).abs() < 1e-9);
        assert!((t.ingress(HostId(20)).gbps() - 10.0).abs() < 1e-9);
        assert!(t.contains(HostId(20)));
        assert!(!t.contains(HostId(21)));
        assert_eq!(t.num_fabric_links(), 0);
        assert_eq!(t.num_racks(), 0);
        assert_eq!(t.route(HostId(0), HostId(20)), [None, None]);
    }

    #[test]
    fn heterogeneous_topology() {
        let t = Topology::heterogeneous(
            vec![Bandwidth::from_gbps(10.0), Bandwidth::from_gbps(25.0)],
            vec![Bandwidth::from_gbps(10.0), Bandwidth::from_gbps(25.0)],
        );
        assert_eq!(t.num_hosts(), 2);
        assert!((t.egress(HostId(1)).gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn hosts_iterator_covers_all() {
        let t = Topology::uniform(5, Bandwidth::from_gbps(1.0));
        let ids: Vec<_> = t.hosts().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], HostId(0));
        assert_eq!(ids[4], HostId(4));
    }

    #[test]
    fn core_capacity_option() {
        let t = Topology::uniform(4, Bandwidth::from_gbps(10.0));
        assert!(t.core_capacity().is_none(), "non-blocking by default");
        let t = TopologyBuilder::single_switch(4)
            .core_capacity(Bandwidth::from_gbps(20.0))
            .build();
        assert!((t.core_capacity().unwrap().gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loopback_override() {
        let t = Topology::uniform(2, Bandwidth::from_gbps(10.0))
            .with_loopback(Bandwidth::from_gbps(100.0));
        assert!((t.loopback().gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn rejects_empty() {
        let _ = Topology::uniform(0, Bandwidth::from_gbps(10.0));
    }

    #[test]
    fn leaf_spine_shape_and_routing() {
        let t = TopologyBuilder::leaf_spine(3, 4, 2.0)
            .link(Bandwidth::from_gbps(10.0))
            .build();
        assert_eq!(t.num_hosts(), 12);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.num_fabric_links(), 6);
        // Uplink sized hosts_per_rack × link / oversub = 4 × 10 / 2.
        assert!((t.fabric_capacity(LinkId(0)).gbps() - 20.0).abs() < 1e-9);
        assert_eq!(t.rack_of(HostId(0)), Some(0));
        assert_eq!(t.rack_of(HostId(5)), Some(1));
        assert_eq!(t.rack_of(HostId(11)), Some(2));
        // Rack-local: no fabric hops. Cross-rack: src uplink + dst downlink.
        assert_eq!(t.route(HostId(0), HostId(3)), [None, None]);
        assert_eq!(
            t.route(HostId(0), HostId(5)),
            [Some(LinkId(0)), Some(LinkId(3))]
        );
        assert_eq!(
            t.route(HostId(11), HostId(2)),
            [Some(LinkId(4)), Some(LinkId(1))]
        );
        // Loopback never routes.
        assert_eq!(t.route(HostId(5), HostId(5)), [None, None]);
        assert_eq!(t.fabric_label(LinkId(0)), "rack0.up");
        assert_eq!(t.fabric_label(LinkId(3)), "rack1.down");
    }

    #[test]
    fn one_to_one_leaf_spine_has_no_fabric_links() {
        let t = TopologyBuilder::leaf_spine(2, 4, 1.0).build();
        assert_eq!(t.num_fabric_links(), 0, "1:1 fabric cannot bind");
        assert_eq!(t.num_racks(), 2, "rack grouping still recorded");
        assert_eq!(t.route(HostId(0), HostId(7)), [None, None]);
    }

    #[test]
    fn builder_overrides_one_nic() {
        let t = TopologyBuilder::leaf_spine(2, 2, 4.0)
            .host_nic(
                HostId(3),
                Bandwidth::from_gbps(25.0),
                Bandwidth::from_gbps(1.0),
            )
            .build();
        assert!((t.egress(HostId(3)).gbps() - 25.0).abs() < 1e-9);
        assert!((t.ingress(HostId(3)).gbps() - 1.0).abs() < 1e-9);
        assert!((t.egress(HostId(0)).gbps() - 10.0).abs() < 1e-9);
        // Fabric sizing ignores the override: 2 × 10 / 4.
        assert!((t.fabric_capacity(LinkId(0)).gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "oversubscription factor")]
    fn rejects_undersubscription() {
        let _ = TopologyBuilder::leaf_spine(2, 2, 0.5);
    }

    #[test]
    fn serde_roundtrip_without_fabric_fields() {
        // Pre-fabric serialized topologies (no `fabric`/`rack_of` keys)
        // must deserialize to a non-blocking fabric: build the legacy form
        // by stripping the new keys from a real round trip.
        let t = Topology::uniform(2, Bandwidth::from_gbps(10.0));
        let json = serde_json::to_string(&t).unwrap();
        let mut v = serde_json::from_str_value(&json).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "fabric" && k != "rack_of");
        }
        let legacy = serde_json::to_string(&v).unwrap();
        let back: Topology = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.num_fabric_links(), 0);
        assert_eq!(back.num_hosts(), 2);
    }
}
