//! Cluster network topology.
//!
//! The paper's testbed is a single-switch topology: N hosts, each with one
//! NIC, all links the same speed, a non-blocking switch. The contended
//! resources are therefore exactly the per-host NIC egress and ingress
//! capacities, which is what this model exposes.

use crate::types::{Bandwidth, HostId};
use serde::{Deserialize, Serialize};

/// A single-switch topology: per-host egress and ingress link capacities,
/// plus an optional switch-fabric ("core") capacity shared by all
/// cross-host traffic.
///
/// The paper's testbed switch is non-blocking (no core constraint); the
/// core option models the oversubscribed aggregation fabrics common in
/// production clusters, where TensorLights' end-host priorities meet a
/// contention point they cannot control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    egress: Vec<Bandwidth>,
    ingress: Vec<Bandwidth>,
    /// Rate applied to flows whose source and destination host coincide
    /// (loopback traffic never touches the NIC).
    loopback: Bandwidth,
    /// Aggregate capacity of the switch fabric (None = non-blocking).
    core: Option<Bandwidth>,
}

impl Topology {
    /// A uniform topology: `hosts` hosts, all NICs at `link` speed.
    /// Matches the paper's testbed shape (21 hosts, 10 Gbps).
    pub fn uniform(hosts: usize, link: Bandwidth) -> Self {
        assert!(hosts > 0, "topology needs at least one host");
        Topology {
            egress: vec![link; hosts],
            ingress: vec![link; hosts],
            loopback: Bandwidth::from_gbps(400.0),
            core: None,
        }
    }

    /// A topology with per-host link speeds (heterogeneous NICs).
    pub fn heterogeneous(egress: Vec<Bandwidth>, ingress: Vec<Bandwidth>) -> Self {
        assert!(!egress.is_empty(), "topology needs at least one host");
        assert_eq!(
            egress.len(),
            ingress.len(),
            "egress/ingress host counts differ"
        );
        Topology {
            egress,
            ingress,
            loopback: Bandwidth::from_gbps(400.0),
            core: None,
        }
    }

    /// Override the loopback (same-host) transfer rate.
    pub fn with_loopback(mut self, loopback: Bandwidth) -> Self {
        self.loopback = loopback;
        self
    }

    /// Constrain the switch fabric to an aggregate capacity (an
    /// oversubscribed core). All cross-host traffic shares it.
    pub fn with_core_capacity(mut self, core: Bandwidth) -> Self {
        self.core = Some(core);
        self
    }

    /// The fabric capacity, if constrained.
    pub fn core_capacity(&self) -> Option<Bandwidth> {
        self.core
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.egress.len()
    }

    /// True if `h` is a valid host id.
    pub fn contains(&self, h: HostId) -> bool {
        (h.0 as usize) < self.egress.len()
    }

    /// Egress (outbound) capacity of host `h`.
    pub fn egress(&self, h: HostId) -> Bandwidth {
        self.egress[h.0 as usize]
    }

    /// Ingress (inbound) capacity of host `h`.
    pub fn ingress(&self, h: HostId) -> Bandwidth {
        self.ingress[h.0 as usize]
    }

    /// Loopback rate for same-host transfers.
    pub fn loopback(&self) -> Bandwidth {
        self.loopback
    }

    /// Replace host `h`'s NIC capacities (both directions). This is the
    /// fault layer's degradation knob; callers driving a live
    /// [`crate::FluidNet`] must go through
    /// [`crate::FluidNet::set_host_capacity`] so in-flight allocations
    /// are re-solved.
    pub fn set_host_capacity(&mut self, h: HostId, egress: Bandwidth, ingress: Bandwidth) {
        assert!(self.contains(h), "host {h:?} not in topology");
        self.egress[h.0 as usize] = egress;
        self.ingress[h.0 as usize] = ingress;
    }

    /// Iterator over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.egress.len() as u32).map(HostId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology() {
        let t = Topology::uniform(21, Bandwidth::from_gbps(10.0));
        assert_eq!(t.num_hosts(), 21);
        assert!((t.egress(HostId(0)).gbps() - 10.0).abs() < 1e-9);
        assert!((t.ingress(HostId(20)).gbps() - 10.0).abs() < 1e-9);
        assert!(t.contains(HostId(20)));
        assert!(!t.contains(HostId(21)));
    }

    #[test]
    fn heterogeneous_topology() {
        let t = Topology::heterogeneous(
            vec![Bandwidth::from_gbps(10.0), Bandwidth::from_gbps(25.0)],
            vec![Bandwidth::from_gbps(10.0), Bandwidth::from_gbps(25.0)],
        );
        assert_eq!(t.num_hosts(), 2);
        assert!((t.egress(HostId(1)).gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn hosts_iterator_covers_all() {
        let t = Topology::uniform(5, Bandwidth::from_gbps(1.0));
        let ids: Vec<_> = t.hosts().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], HostId(0));
        assert_eq!(ids[4], HostId(4));
    }

    #[test]
    fn core_capacity_option() {
        let t = Topology::uniform(4, Bandwidth::from_gbps(10.0));
        assert!(t.core_capacity().is_none(), "non-blocking by default");
        let t = t.with_core_capacity(Bandwidth::from_gbps(20.0));
        assert!((t.core_capacity().unwrap().gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loopback_override() {
        let t = Topology::uniform(2, Bandwidth::from_gbps(10.0))
            .with_loopback(Bandwidth::from_gbps(100.0));
        assert!((t.loopback().gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn rejects_empty() {
        let _ = Topology::uniform(0, Bandwidth::from_gbps(10.0));
    }
}
