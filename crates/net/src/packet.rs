//! Chunk-level single-link scheduling simulator.
//!
//! While the fluid model captures rate sharing exactly, it abstracts away
//! serialization order. This engine simulates one egress link (the host with
//! colocated PSes — the paper's Figure 4a) at the granularity of fixed-size
//! chunks, with the qdisc disciplines the paper discusses:
//!
//! * [`Qdisc::PfifoFast`] — the Linux default. Multiple bulk TCP streams
//!   through one FIFO share the link in an interleaved, approximately fair
//!   way; we model that as chunk-level round-robin over active transfers
//!   (Figure 4b).
//! * [`Qdisc::Prio`] — strict priority by band, round-robin within a band;
//!   the behaviour of the paper's htb configuration (Figure 4c), and with
//!   rotations, TLs-RR (Figure 4d).
//! * [`Qdisc::Drr`] — deficit round-robin across tags (per-*job* fair
//!   queueing), an ablation baseline separating "per-job grouping" from
//!   "strict priority".
//!
//! Outputs are per-transfer completion times plus a chunk-departure timeline
//! suitable for rendering Figure-4-style diagrams.

use crate::types::{Band, Bandwidth};
use simcore::{SimDuration, SimTime};

/// Queueing discipline at the simulated egress link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Qdisc {
    /// Default FIFO: fair chunk interleaving across all active transfers.
    PfifoFast,
    /// Strict priority by band; fair interleaving within a band.
    Prio,
    /// Deficit round-robin across tags with the given quantum (bytes).
    Drr {
        /// Bytes a tag may send per round-robin turn.
        quantum_bytes: u64,
    },
}

/// One transfer to be scheduled on the link.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    /// Grouping tag (the owning job).
    pub tag: u64,
    /// Receiver identifier (opaque to the engine; e.g. worker index).
    pub dst: u32,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Initial priority band.
    pub band: Band,
    /// Arrival time at the qdisc.
    pub arrival: SimTime,
}

/// A scheduled band change (TLs-RR rotation): at `at`, each `(tag, band)`
/// pair reassigns every transfer of `tag` to `band`.
#[derive(Debug, Clone)]
pub struct Rotation {
    /// When the rotation takes effect (applied at chunk granularity).
    pub at: SimTime,
    /// New band per tag.
    pub assignment: Vec<(u64, Band)>,
}

/// Completion record for one transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Grouping tag from the input.
    pub tag: u64,
    /// Receiver from the input.
    pub dst: u32,
    /// Arrival time from the input.
    pub arrival: SimTime,
    /// When the first chunk of this transfer started transmitting.
    pub first_service: SimTime,
    /// When the final chunk finished transmitting.
    pub finished: SimTime,
    /// Size from the input.
    pub bytes: u64,
}

/// One chunk departure, for timeline rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// When the chunk finished serializing onto the link.
    pub time: SimTime,
    /// Owning transfer's tag.
    pub tag: u64,
    /// Owning transfer's receiver.
    pub dst: u32,
    /// Chunk size in bytes.
    pub bytes: u64,
}

/// Result of a packet-level run.
#[derive(Debug, Clone)]
pub struct PacketRun {
    /// Per-transfer outcomes, in input order.
    pub outcomes: Vec<TransferOutcome>,
    /// Chunk departures in time order.
    pub timeline: Vec<TimelineEntry>,
}

impl PacketRun {
    /// Finish time of the last transfer belonging to `tag`, if any — the
    /// iteration-relevant quantity (a job's slowest model update).
    pub fn last_finish_of_tag(&self, tag: u64) -> Option<SimTime> {
        self.outcomes
            .iter()
            .filter(|o| o.tag == tag)
            .map(|o| o.finished)
            .max()
    }

    /// Spread (max - min) of finish times within `tag` — the straggler
    /// indicator for one job's fan-out.
    pub fn finish_spread_of_tag(&self, tag: u64) -> Option<SimDuration> {
        let times: Vec<SimTime> = self
            .outcomes
            .iter()
            .filter(|o| o.tag == tag)
            .map(|o| o.finished)
            .collect();
        let (min, max) = (times.iter().min()?, times.iter().max()?);
        Some(max.since(*min))
    }
}

/// The single-link chunk simulator.
#[derive(Debug, Clone, Copy)]
pub struct PacketSim {
    /// Link bandwidth.
    pub link: Bandwidth,
    /// Chunk granularity in bytes (default 64 KiB).
    pub chunk_bytes: u64,
    /// Scheduling discipline.
    pub qdisc: Qdisc,
}

#[derive(Debug)]
struct Live {
    idx: usize,
    tag: u64,
    dst: u32,
    band: Band,
    remaining: u64,
}

impl PacketSim {
    /// Construct with the default 64 KiB chunk size.
    pub fn new(link: Bandwidth, qdisc: Qdisc) -> Self {
        PacketSim {
            link,
            chunk_bytes: 64 * 1024,
            qdisc,
        }
    }

    /// Run to completion and return outcomes plus the departure timeline.
    ///
    /// `rotations` must be sorted by time; they are applied at chunk
    /// boundaries (a chunk in flight is never preempted, as on a real NIC).
    pub fn run(&self, transfers: &[Transfer], rotations: &[Rotation]) -> PacketRun {
        assert!(self.chunk_bytes > 0, "chunk size must be positive");
        debug_assert!(
            rotations.windows(2).all(|w| w[0].at <= w[1].at),
            "rotations must be sorted by time"
        );

        let mut arrivals: Vec<usize> = (0..transfers.len()).collect();
        arrivals.sort_by_key(|&i| (transfers[i].arrival, i));
        let mut next_arrival = 0usize;

        let mut outcomes: Vec<TransferOutcome> = transfers
            .iter()
            .map(|t| TransferOutcome {
                tag: t.tag,
                dst: t.dst,
                arrival: t.arrival,
                first_service: SimTime::MAX,
                finished: SimTime::MAX,
                bytes: t.bytes,
            })
            .collect();

        let mut live: Vec<Live> = Vec::new();
        let mut timeline = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next_rotation = 0usize;
        let mut rr_cursor: usize = 0; // index into `live` of the next candidate
        let mut drr_tag_cursor: usize = 0;
        let mut drr_topped_up = false;
        let mut drr_deficit: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        // Rotations are filter changes: they must also classify transfers
        // that arrive *after* the rotation fired.
        let mut band_override: std::collections::HashMap<u64, Band> =
            std::collections::HashMap::new();
        let bps = self.link.bytes_per_sec();

        loop {
            // Admit arrivals that have occurred.
            while next_arrival < arrivals.len() && transfers[arrivals[next_arrival]].arrival <= now
            {
                let i = arrivals[next_arrival];
                let t = &transfers[i];
                if t.bytes > 0 {
                    live.push(Live {
                        idx: i,
                        tag: t.tag,
                        dst: t.dst,
                        band: band_override.get(&t.tag).copied().unwrap_or(t.band),
                        remaining: t.bytes,
                    });
                } else {
                    // Zero-byte transfers complete instantly on arrival.
                    outcomes[i].first_service = now;
                    outcomes[i].finished = now;
                }
                next_arrival += 1;
            }
            // Apply due rotations.
            while next_rotation < rotations.len() && rotations[next_rotation].at <= now {
                for &(tag, band) in &rotations[next_rotation].assignment {
                    band_override.insert(tag, band);
                    for l in live.iter_mut().filter(|l| l.tag == tag) {
                        l.band = band;
                    }
                }
                next_rotation += 1;
            }

            if live.is_empty() {
                if next_arrival < arrivals.len() {
                    now = transfers[arrivals[next_arrival]].arrival;
                    continue;
                }
                break;
            }

            // Pick the next transfer to serve one chunk.
            let pick = match self.qdisc {
                Qdisc::PfifoFast => {
                    rr_cursor %= live.len();
                    let p = rr_cursor;
                    rr_cursor += 1;
                    p
                }
                Qdisc::Prio => {
                    let best_band = live.iter().map(|l| l.band).min().expect("live non-empty");
                    // Round-robin among the best band's members.
                    rr_cursor %= live.len();
                    let mut p = rr_cursor;
                    while live[p].band != best_band {
                        p = (p + 1) % live.len();
                    }
                    rr_cursor = p + 1;
                    p
                }
                Qdisc::Drr { quantum_bytes } => {
                    assert!(quantum_bytes > 0, "DRR quantum must be positive");
                    // Ordered list of distinct live tags (first-seen order).
                    let mut tags: Vec<u64> = Vec::new();
                    for l in &live {
                        if !tags.contains(&l.tag) {
                            tags.push(l.tag);
                        }
                    }
                    drr_tag_cursor %= tags.len();
                    // Classic DRR across tags: on entering a tag, top its
                    // deficit up by one quantum; serve chunks while the
                    // deficit covers them; then move to the next tag.
                    // Terminates because each full pass adds a quantum.
                    loop {
                        let tag = tags[drr_tag_cursor];
                        let head = live
                            .iter()
                            .position(|l| l.tag == tag)
                            .expect("tag has a live transfer");
                        let need = self.chunk_bytes.min(live[head].remaining);
                        let deficit = drr_deficit.entry(tag).or_insert(0);
                        if *deficit >= need {
                            break head;
                        }
                        if !drr_topped_up {
                            *deficit += quantum_bytes;
                            drr_topped_up = true;
                            if *deficit >= need {
                                break head;
                            }
                        }
                        drr_tag_cursor = (drr_tag_cursor + 1) % tags.len();
                        drr_topped_up = false;
                    }
                }
            };

            // Transmit one chunk.
            let size = self.chunk_bytes.min(live[pick].remaining);
            let idx = live[pick].idx;
            if outcomes[idx].first_service == SimTime::MAX {
                outcomes[idx].first_service = now;
            }
            now += SimDuration::from_secs_f64(size as f64 / bps);
            live[pick].remaining -= size;
            if let Qdisc::Drr { .. } = self.qdisc {
                let d = drr_deficit
                    .get_mut(&live[pick].tag)
                    .expect("picked tag has a deficit entry");
                *d = d.saturating_sub(size);
            }
            timeline.push(TimelineEntry {
                time: now,
                tag: live[pick].tag,
                dst: live[pick].dst,
                bytes: size,
            });
            if live[pick].remaining == 0 {
                outcomes[idx].finished = now;
                let tag = live[pick].tag;
                live.remove(pick);
                if rr_cursor > pick {
                    rr_cursor -= 1;
                }
                // An emptied DRR queue forfeits its deficit (classic DRR).
                if !live.iter().any(|l| l.tag == tag) {
                    drr_deficit.remove(&tag);
                    drr_topped_up = false;
                }
            }
        }

        PacketRun { outcomes, timeline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS10: f64 = 1.25e9;

    fn sim(qdisc: Qdisc) -> PacketSim {
        PacketSim::new(Bandwidth::from_gbps(10.0), qdisc)
    }

    fn xfer(tag: u64, dst: u32, mb: u64, band: u8) -> Transfer {
        Transfer {
            tag,
            dst,
            bytes: mb * 1_000_000,
            band: Band(band),
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn lone_transfer_takes_serialization_time() {
        let run = sim(Qdisc::PfifoFast).run(&[xfer(1, 0, 125, 0)], &[]);
        let want = 125e6 / GBPS10;
        assert!((run.outcomes[0].finished.as_secs_f64() - want).abs() < 1e-6);
        assert_eq!(run.outcomes[0].first_service, SimTime::ZERO);
    }

    #[test]
    fn fifo_interleaves_both_finish_late() {
        // Figure 4b: both jobs' updates interleave; both finish ~at the end.
        let run = sim(Qdisc::PfifoFast).run(&[xfer(1, 0, 125, 0), xfer(2, 1, 125, 0)], &[]);
        let total = 250e6 / GBPS10;
        for o in &run.outcomes {
            assert!(
                (o.finished.as_secs_f64() - total).abs() < 0.01,
                "both jobs straggle under FIFO: {}",
                o.finished
            );
        }
    }

    #[test]
    fn prio_serializes_jobs() {
        // Figure 4c: job 1 finishes at T/2, job 2 at T.
        let run = sim(Qdisc::Prio).run(&[xfer(1, 0, 125, 0), xfer(2, 1, 125, 1)], &[]);
        let half = 125e6 / GBPS10;
        assert!((run.outcomes[0].finished.as_secs_f64() - half).abs() < 0.01);
        assert!((run.outcomes[1].finished.as_secs_f64() - 2.0 * half).abs() < 0.01);
    }

    #[test]
    fn prio_matches_fifo_total() {
        let fifo = sim(Qdisc::PfifoFast).run(&[xfer(1, 0, 100, 0), xfer(2, 1, 100, 0)], &[]);
        let prio = sim(Qdisc::Prio).run(&[xfer(1, 0, 100, 0), xfer(2, 1, 100, 1)], &[]);
        let f_last = fifo.last_finish_of_tag(2).unwrap();
        let p_last = prio.last_finish_of_tag(2).unwrap();
        assert!((f_last.as_secs_f64() - p_last.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn prio_halves_winning_jobs_delivery() {
        // One job with 4 workers contending against an equal job. Under FIFO
        // every update of both jobs is delivered only near the very end
        // (Figure 4b); under priority the winning job has *all* its updates
        // delivered at the halfway point (Figure 4c), so none of its workers
        // straggles.
        let job1: Vec<Transfer> = (0..4).map(|w| xfer(1, w, 25, 0)).collect();
        let job2: Vec<Transfer> = (0..4).map(|w| xfer(2, 4 + w, 25, 1)).collect();
        let all: Vec<Transfer> = job1.iter().chain(job2.iter()).copied().collect();
        let prio = sim(Qdisc::Prio).run(&all, &[]);

        let fifo_all: Vec<Transfer> = all
            .iter()
            .map(|t| Transfer {
                band: Band(0),
                ..*t
            })
            .collect();
        let fifo = sim(Qdisc::PfifoFast).run(&fifo_all, &[]);

        let total = 200e6 / GBPS10;
        let fifo_job1 = fifo.last_finish_of_tag(1).unwrap().as_secs_f64();
        let prio_job1 = prio.last_finish_of_tag(1).unwrap().as_secs_f64();
        assert!(
            (fifo_job1 - total).abs() < 0.01,
            "FIFO: job 1 late ({fifo_job1})"
        );
        assert!(
            (prio_job1 - total / 2.0).abs() < 0.01,
            "prio: job 1 done at midpoint ({prio_job1})"
        );
        // The yielding job is no worse off than under FIFO.
        let fifo_job2 = fifo.last_finish_of_tag(2).unwrap().as_secs_f64();
        let prio_job2 = prio.last_finish_of_tag(2).unwrap().as_secs_f64();
        assert!((fifo_job2 - prio_job2).abs() < 1e-9);
    }

    #[test]
    fn rotation_swaps_service() {
        // Two long transfers; rotation at the midpoint flips the winner.
        let t1 = xfer(1, 0, 100, 0);
        let t2 = xfer(2, 1, 100, 1);
        let half = SimTime::from_secs_f64(50e6 / GBPS10);
        let rot = Rotation {
            at: half,
            assignment: vec![(1, Band(1)), (2, Band(0))],
        };
        let run = sim(Qdisc::Prio).run(&[t1, t2], &[rot]);
        // After rotation, tag 2 runs alone until it finishes all 100 MB,
        // then tag 1 finishes its remaining 50 MB.
        let f1 = run.outcomes[0].finished.as_secs_f64();
        let f2 = run.outcomes[1].finished.as_secs_f64();
        assert!(f2 < f1, "rotation promoted tag 2: f1={f1} f2={f2}");
        let total = 200e6 / GBPS10;
        assert!((f1 - total).abs() < 0.01);
    }

    #[test]
    fn drr_is_fair_across_tags() {
        // Tag 1 has four transfers, tag 2 has one; DRR gives each *tag* an
        // equal share, so tag 2's single transfer finishes first.
        let mut ts: Vec<Transfer> = (0..4).map(|w| xfer(1, w, 50, 0)).collect();
        ts.push(xfer(2, 9, 50, 0));
        let run = sim(Qdisc::Drr {
            quantum_bytes: 64 * 1024,
        })
        .run(&ts, &[]);
        let t2 = run.outcomes[4].finished.as_secs_f64();
        let t1_last = run.last_finish_of_tag(1).unwrap().as_secs_f64();
        // Tag 2 gets ~half the link: 50 MB at 625 MB/s = 0.08 s.
        assert!((t2 - 0.08).abs() < 0.01, "tag2 at {t2}");
        assert!(t1_last > t2, "tag 1's queue drains later");
    }

    #[test]
    fn late_arrival_waits_for_link() {
        let t1 = xfer(1, 0, 125, 0);
        let mut t2 = xfer(2, 1, 1, 0);
        t2.arrival = SimTime::from_secs_f64(0.2);
        let run = sim(Qdisc::PfifoFast).run(&[t1, t2], &[]);
        assert!(run.outcomes[1].first_service >= t2.arrival);
        assert!(run.outcomes[1].finished > t2.arrival);
    }

    #[test]
    fn idle_gap_jumps_to_next_arrival() {
        let t1 = xfer(1, 0, 1, 0);
        let mut t2 = xfer(2, 1, 1, 0);
        t2.arrival = SimTime::from_secs(5);
        let run = sim(Qdisc::PfifoFast).run(&[t1, t2], &[]);
        assert_eq!(run.outcomes[1].first_service, SimTime::from_secs(5));
    }

    #[test]
    fn zero_byte_transfer_completes_instantly() {
        let t = Transfer {
            tag: 1,
            dst: 0,
            bytes: 0,
            band: Band(0),
            arrival: SimTime::from_secs(1),
        };
        let run = sim(Qdisc::PfifoFast).run(&[t], &[]);
        assert_eq!(run.outcomes[0].finished, SimTime::from_secs(1));
    }

    #[test]
    fn rotation_before_any_arrival_applies_on_first_service() {
        // The rotation fires at t=0 but the transfers arrive later; the
        // reassigned bands must hold from the first chunk.
        let mut t1 = xfer(1, 0, 10, 0);
        let mut t2 = xfer(2, 1, 10, 1);
        t1.arrival = SimTime::from_secs(1);
        t2.arrival = SimTime::from_secs(1);
        let rot = Rotation {
            at: SimTime::ZERO,
            assignment: vec![(1, Band(1)), (2, Band(0))],
        };
        let run = sim(Qdisc::Prio).run(&[t1, t2], &[rot]);
        // Tag 2 was promoted before service started: it finishes first.
        assert!(run.outcomes[1].finished < run.outcomes[0].finished);
    }

    #[test]
    fn drr_serves_within_tag_in_fifo_order() {
        // Two transfers of one tag against one of another: the tag's first
        // transfer completes before its second starts finishing.
        let ts = [xfer(1, 0, 10, 0), xfer(1, 1, 10, 0), xfer(2, 2, 20, 0)];
        let run = sim(Qdisc::Drr {
            quantum_bytes: 64 * 1024,
        })
        .run(&ts, &[]);
        assert!(run.outcomes[0].finished < run.outcomes[1].finished);
        // Tag 1's aggregate (20 MB) and tag 2's 20 MB finish together-ish.
        let t1_last = run.last_finish_of_tag(1).unwrap().as_secs_f64();
        let t2 = run.last_finish_of_tag(2).unwrap().as_secs_f64();
        assert!((t1_last - t2).abs() < 0.01, "{t1_last} vs {t2}");
    }

    #[test]
    fn timeline_is_monotone_and_complete() {
        let ts = [xfer(1, 0, 10, 0), xfer(2, 1, 10, 1)];
        let run = sim(Qdisc::Prio).run(&ts, &[]);
        assert!(run.timeline.windows(2).all(|w| w[0].time <= w[1].time));
        let total: u64 = run.timeline.iter().map(|e| e.bytes).sum();
        assert_eq!(total, 20_000_000);
    }

    #[test]
    fn conservation_across_disciplines() {
        let ts = [xfer(1, 0, 30, 0), xfer(2, 1, 20, 1), xfer(3, 2, 10, 2)];
        for q in [
            Qdisc::PfifoFast,
            Qdisc::Prio,
            Qdisc::Drr {
                quantum_bytes: 64 * 1024,
            },
        ] {
            let run = sim(q).run(&ts, &[]);
            let last = run.outcomes.iter().map(|o| o.finished).max().unwrap();
            let want = 60e6 / GBPS10;
            assert!(
                (last.as_secs_f64() - want).abs() < 1e-6,
                "work conservation under {q:?}"
            );
        }
    }
}
