//! Multi-host chunk-level network simulation.
//!
//! A second, independently built network model covering the full topology
//! (the single-link [`crate::packet`] engine covers only one egress). Every
//! flow is a stream of fixed-size chunks that pass through **two queueing
//! servers** — the sender's egress link and the receiver's ingress link —
//! with a non-blocking switch in between (store-and-forward). A per-flow
//! sliding window caps chunks in flight, giving the self-clocking behaviour
//! of TCP: a flow whose receiver is congested stops occupying its sender.
//!
//! Egress scheduling follows the host's discipline (FIFO round-robin, or
//! strict priority by band with round-robin within a band — the htb
//! behaviour); ingress is always FIFO in arrival order, like a real NIC.
//!
//! At a congested ingress, per-flow fairness *emerges* from window
//! self-clocking: each flow keeps at most `window` chunks circulating, so
//! FIFO service converges to equal per-flow rates — but only once a flow
//! is longer than its window. Flows that fit entirely inside one window
//! behave like unthrottled bursts and share the ingress in proportion to
//! their senders' arrival rates instead, exactly as sub-window TCP bursts
//! do before congestion control engages.
//!
//! This engine exists to *validate* the fluid model at system scale (see
//! `tests/fluid_vs_packet.rs`): the two implementations share no code
//! beyond the type definitions, so agreement is meaningful evidence.

use crate::topology::Topology;
use crate::types::{Band, HostId};
use simcore::{EventQueue, SimDuration, SimTime};
use std::collections::VecDeque;

/// One flow to simulate.
#[derive(Debug, Clone, Copy)]
pub struct NetFlow {
    /// Sending host.
    pub src: HostId,
    /// Receiving host (must differ from `src`).
    pub dst: HostId,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Strict-priority band at the sender's egress.
    pub band: Band,
    /// Caller tag (reporting only).
    pub tag: u64,
    /// When the flow becomes ready to send.
    pub start: SimTime,
}

/// Per-flow outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFlowOutcome {
    /// Tag from the input.
    pub tag: u64,
    /// Start time from the input.
    pub started: SimTime,
    /// When the last chunk was fully received.
    pub finished: SimTime,
}

/// Egress scheduling discipline (ingress is always FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressDiscipline {
    /// Round-robin across ready flows (models fair TCP sharing through
    /// pfifo_fast).
    FifoFair,
    /// Strict priority by band, round-robin within a band (htb/prio).
    Priority,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct NetSimConfig {
    /// The network (per-host egress/ingress rates; the core option is not
    /// modelled here).
    pub topo: Topology,
    /// Chunk size in bytes (default 64 KiB).
    pub chunk_bytes: u64,
    /// Max chunks in flight per flow (the "congestion window").
    pub window: u32,
    /// Egress discipline on every host.
    pub discipline: EgressDiscipline,
}

impl NetSimConfig {
    /// Config with 64 KiB chunks and a 16-chunk window.
    pub fn new(topo: Topology, discipline: EgressDiscipline) -> Self {
        NetSimConfig {
            topo,
            chunk_bytes: 64 * 1024,
            window: 16,
            discipline,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    FlowStart(usize),
    EgressDone(u32),
    IngressDone(u32),
}

#[derive(Debug)]
struct FlowState {
    src: u32,
    dst: u32,
    band: Band,
    started: bool,
    /// Bytes not yet handed to the egress link.
    to_send: u64,
    /// Chunks sent but not yet fully received.
    in_flight: u32,
    /// Bytes fully received.
    received: u64,
    total: u64,
    finished: Option<SimTime>,
}

/// Run the simulation to completion.
///
/// Panics on loopback flows (`src == dst`) — they never touch the network
/// and belong in the caller's fast path.
pub fn run(cfg: &NetSimConfig, flows: &[NetFlow]) -> Vec<NetFlowOutcome> {
    assert!(cfg.chunk_bytes > 0, "chunk size must be positive");
    assert!(cfg.window > 0, "window must be positive");
    let n = cfg.topo.num_hosts();

    let mut state: Vec<FlowState> = flows
        .iter()
        .map(|f| {
            assert!(
                cfg.topo.contains(f.src) && cfg.topo.contains(f.dst),
                "flow endpoints outside topology"
            );
            assert!(f.src != f.dst, "loopback flows are not modelled");
            assert!(f.bytes > 0, "empty flow");
            FlowState {
                src: f.src.0,
                dst: f.dst.0,
                band: f.band,
                started: false,
                to_send: f.bytes,
                in_flight: 0,
                received: 0,
                total: f.bytes,
                finished: None,
            }
        })
        .collect();

    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (i, f) in flows.iter().enumerate() {
        queue.schedule(f.start, Ev::FlowStart(i));
    }

    // Per-host egress: the flow currently serialized (by index) + the size
    // of the chunk in service; per-host RR cursor.
    let mut egress_busy: Vec<Option<(usize, u64)>> = vec![None; n];
    let mut egress_cursor: Vec<usize> = vec![0; n];
    // Per-host ingress: FIFO of (flow, chunk bytes) + in-service marker.
    let mut ingress_q: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); n];
    let mut ingress_busy: Vec<bool> = vec![false; n];

    let mut outcomes: Vec<NetFlowOutcome> = flows
        .iter()
        .map(|f| NetFlowOutcome {
            tag: f.tag,
            started: f.start,
            finished: SimTime::MAX,
        })
        .collect();

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::FlowStart(i) => {
                state[i].started = true;
                let h = state[i].src;
                if egress_busy[h as usize].is_none() {
                    kick_egress(
                        now,
                        h,
                        cfg,
                        &mut state,
                        &mut egress_busy,
                        &mut egress_cursor,
                        &mut queue,
                    );
                }
            }
            Ev::EgressDone(h) => {
                let (i, chunk) = egress_busy[h as usize].take().expect("egress was busy");
                // The chunk crosses the switch into the receiver's ingress.
                let dst = state[i].dst as usize;
                ingress_q[dst].push_back((i, chunk));
                if !ingress_busy[dst] {
                    kick_ingress(
                        now,
                        dst as u32,
                        cfg,
                        &mut ingress_q,
                        &mut ingress_busy,
                        &mut queue,
                    );
                }
                kick_egress(
                    now,
                    h,
                    cfg,
                    &mut state,
                    &mut egress_busy,
                    &mut egress_cursor,
                    &mut queue,
                );
            }
            Ev::IngressDone(h) => {
                let (i, chunk) = ingress_q[h as usize]
                    .pop_front()
                    .expect("ingress completed a chunk");
                ingress_busy[h as usize] = false;
                state[i].in_flight -= 1;
                state[i].received += chunk;
                if state[i].received >= state[i].total {
                    state[i].finished = Some(now);
                    outcomes[i].finished = now;
                }
                // The window opened: the sender may now proceed.
                let src = state[i].src;
                if egress_busy[src as usize].is_none() {
                    kick_egress(
                        now,
                        src,
                        cfg,
                        &mut state,
                        &mut egress_busy,
                        &mut egress_cursor,
                        &mut queue,
                    );
                }
                // Serve the next queued chunk at this ingress.
                kick_ingress(now, h, cfg, &mut ingress_q, &mut ingress_busy, &mut queue);
            }
        }
    }

    debug_assert!(
        state.iter().all(|f| f.finished.is_some()),
        "network simulation deadlocked"
    );
    outcomes
}

fn kick_egress(
    now: SimTime,
    h: u32,
    cfg: &NetSimConfig,
    state: &mut [FlowState],
    egress_busy: &mut [Option<(usize, u64)>],
    egress_cursor: &mut [usize],
    queue: &mut EventQueue<Ev>,
) {
    // A flow is ready when it has bytes left AND window room — a
    // window-stalled high-band flow releases the link to lower bands
    // (work conservation, as with htb borrowing).
    let ready =
        |f: &FlowState| f.started && f.src == h && f.to_send > 0 && f.in_flight < cfg.window;
    let candidates: Vec<usize> = state
        .iter()
        .enumerate()
        .filter(|(_, f)| ready(f))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return;
    }
    let eligible: Vec<usize> = match cfg.discipline {
        EgressDiscipline::FifoFair => candidates,
        EgressDiscipline::Priority => {
            let best = candidates
                .iter()
                .map(|&i| state[i].band)
                .min()
                .expect("nonempty");
            candidates
                .into_iter()
                .filter(|&i| state[i].band == best)
                .collect()
        }
    };
    // Round-robin: first eligible index strictly after the cursor, else wrap.
    let cursor = &mut egress_cursor[h as usize];
    let i = eligible
        .iter()
        .copied()
        .find(|&i| i > *cursor)
        .unwrap_or(eligible[0]);
    *cursor = i;

    let chunk = cfg.chunk_bytes.min(state[i].to_send);
    state[i].to_send -= chunk;
    state[i].in_flight += 1;
    egress_busy[h as usize] = Some((i, chunk));
    let rate = cfg.topo.egress(HostId(h)).bytes_per_sec();
    queue.schedule(
        now + SimDuration::from_secs_f64(chunk as f64 / rate),
        Ev::EgressDone(h),
    );
}

fn kick_ingress(
    now: SimTime,
    h: u32,
    cfg: &NetSimConfig,
    ingress_q: &mut [VecDeque<(usize, u64)>],
    ingress_busy: &mut [bool],
    queue: &mut EventQueue<Ev>,
) {
    if ingress_busy[h as usize] {
        return;
    }
    if let Some(&(_, chunk)) = ingress_q[h as usize].front() {
        ingress_busy[h as usize] = true;
        let rate = cfg.topo.ingress(HostId(h)).bytes_per_sec();
        queue.schedule(
            now + SimDuration::from_secs_f64(chunk as f64 / rate),
            Ev::IngressDone(h),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Bandwidth;

    const LINK: f64 = 1.25e9;

    fn cfg(hosts: usize, d: EgressDiscipline) -> NetSimConfig {
        NetSimConfig::new(Topology::uniform(hosts, Bandwidth::from_gbps(10.0)), d)
    }

    fn flow(src: u32, dst: u32, mb: u64, band: u8, tag: u64) -> NetFlow {
        NetFlow {
            src: HostId(src),
            dst: HostId(dst),
            bytes: mb * 1_000_000,
            band: Band(band),
            tag,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn single_flow_is_pipelined_through_two_links() {
        let c = cfg(2, EgressDiscipline::FifoFair);
        let out = run(&c, &[flow(0, 1, 125, 0, 1)]);
        // Egress and ingress overlap chunk-by-chunk: total ≈ serialization
        // time plus one chunk of store-and-forward latency.
        let want = 125e6 / LINK + c.chunk_bytes as f64 / LINK;
        let got = out[0].finished.as_secs_f64();
        assert!((got - want).abs() < 1e-3, "got {got}, want {want}");
    }

    #[test]
    fn window_of_one_halves_throughput() {
        let mut c = cfg(2, EgressDiscipline::FifoFair);
        c.window = 1;
        let out = run(&c, &[flow(0, 1, 125, 0, 1)]);
        // Stop-and-wait: each chunk is serialized twice sequentially.
        let want = 2.0 * 125e6 / LINK;
        let got = out[0].finished.as_secs_f64();
        assert!((got - want).abs() < 1e-2, "got {got}, want {want}");
    }

    #[test]
    fn fanout_shares_egress_fairly() {
        let c = cfg(3, EgressDiscipline::FifoFair);
        let out = run(&c, &[flow(0, 1, 50, 0, 1), flow(0, 2, 50, 0, 2)]);
        let total = 100e6 / LINK;
        for o in &out {
            assert!(
                (o.finished.as_secs_f64() - total).abs() < 0.01,
                "both finish near the end under fair sharing: {}",
                o.finished
            );
        }
    }

    #[test]
    fn priority_staircases_fanout() {
        let c = cfg(3, EgressDiscipline::Priority);
        let out = run(&c, &[flow(0, 1, 50, 0, 1), flow(0, 2, 50, 1, 2)]);
        let half = 50e6 / LINK;
        assert!((out[0].finished.as_secs_f64() - half).abs() < 0.01);
        assert!((out[1].finished.as_secs_f64() - 2.0 * half).abs() < 0.01);
    }

    #[test]
    fn fanin_shares_ingress() {
        // Two senders into one receiver: the ingress serializes them; both
        // finish near total/ingress-rate.
        let c = cfg(3, EgressDiscipline::FifoFair);
        let out = run(&c, &[flow(0, 2, 50, 0, 1), flow(1, 2, 50, 0, 2)]);
        let total = 100e6 / LINK;
        for o in &out {
            let t = o.finished.as_secs_f64();
            assert!((t - total).abs() < 0.02, "ingress-bound: {t}");
        }
    }

    #[test]
    fn window_decouples_sender_from_congested_receiver() {
        // Flow A: 0 -> 2 (receiver shared with B, so A runs at half rate).
        // Flow C: 0 -> 3, band 1 (lower priority than A at their shared
        // egress). Because A's window stalls it at the congested receiver,
        // C picks up the idle egress — work conservation at chunk level.
        let c = NetSimConfig {
            window: 2,
            ..cfg(4, EgressDiscipline::Priority)
        };
        let out = run(
            &c,
            &[
                flow(0, 2, 50, 0, 1),
                flow(1, 2, 50, 0, 2),
                flow(0, 3, 50, 1, 3),
            ],
        );
        // C must finish well before a fully serialized schedule (A then C =
        // 0.08 s + 0.04 s): it borrows A's stalled egress slots.
        let c_done = out[2].finished.as_secs_f64();
        assert!(
            c_done < 0.085,
            "work conservation through windows: {c_done}"
        );
    }

    #[test]
    fn late_start_is_respected() {
        let c = cfg(2, EgressDiscipline::FifoFair);
        let mut f = flow(0, 1, 10, 0, 1);
        f.start = SimTime::from_secs(3);
        let out = run(&c, &[f]);
        assert!(out[0].finished > SimTime::from_secs(3));
        assert!((out[0].finished.as_secs_f64() - 3.0 - 10e6 / LINK) < 1e-2);
    }

    #[test]
    fn deterministic_across_runs() {
        let c = cfg(5, EgressDiscipline::Priority);
        let flows: Vec<NetFlow> = (0..12)
            .map(|k| flow(k % 4, 4, 5 + k as u64, (k % 3) as u8, k as u64))
            .collect();
        let a = run(&c, &flows);
        let b = run(&c, &flows);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "loopback flows are not modelled")]
    fn rejects_loopback() {
        let c = cfg(2, EgressDiscipline::FifoFair);
        let _ = run(&c, &[flow(0, 0, 1, 0, 1)]);
    }
}
