//! Deterministic fault injection for the TensorLights simulation.
//!
//! Real clusters do not stay healthy: hosts crash and come back, NICs
//! degrade and flap, parameter-server processes die, and the `tc`
//! control plane (the paper's `tlsd`) misses rotation ticks or serves a
//! stale band map. The paper's argument — that unlucky bandwidth
//! sharing stalls synchronous-SGD barriers — only matters if the
//! scheduling wins survive such conditions, so this crate provides a
//! *declarative, seeded, fully deterministic* fault layer:
//!
//! * [`FaultSpec`] — one human-meaningful fault (crash window, NIC
//!   degradation, link flap burst, compute slowdown, PS failure,
//!   control-plane outage), timed in plain seconds so plans serialize
//!   naturally;
//! * [`FaultPlan`] — an ordered collection of specs, either hand-built
//!   or drawn from a seed at a chosen intensity ([`FaultPlan::seeded`]);
//! * [`FaultPlan::compile`] — validation plus expansion into a sorted
//!   timeline of primitive [`FaultAction`]s the engine schedules as
//!   ordinary simulation events.
//!
//! Recovery *policy* also lives here so every layer shares one
//! vocabulary: [`RetryConfig`] (timeout + bounded exponential backoff
//! for worker pull/push traffic) and [`BarrierLossPolicy`] (what a
//! synchronous barrier does when a worker's host is down).
//!
//! Everything is plain data: the same plan compiled twice yields the
//! same timeline, and the same seed yields the same plan — the
//! engine's bit-reproducibility guarantee extends through failures.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Floor for capacity-degradation factors. `Bandwidth` (and the CPU
/// engine's core counts) must stay strictly positive, so a "down" link
/// is modeled as this sliver of its nominal rate rather than zero —
/// indistinguishable from an outage at simulation timescales.
pub const MIN_CAPACITY_FACTOR: f64 = 1e-6;

/// One declarative fault. Times are f64 seconds from simulation start
/// (the engine converts to `SimTime`), which keeps plans trivially
/// serializable and hand-writable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Host `host` crashes at `at_secs` and restarts `downtime_secs`
    /// later. In-flight flows touching the host and tasks running on it
    /// are aborted and retried per [`RetryConfig`].
    HostCrash {
        /// Host index.
        host: u32,
        /// Crash instant, seconds.
        at_secs: f64,
        /// Seconds until the host restarts.
        downtime_secs: f64,
    },
    /// Host `host`'s NIC runs at `factor` × nominal capacity (both
    /// directions) for `duration_secs`, then recovers.
    NicDegrade {
        /// Host index.
        host: u32,
        /// Onset, seconds.
        at_secs: f64,
        /// Degradation window length, seconds.
        duration_secs: f64,
        /// Capacity multiplier in (0, 1]; clamped up to
        /// [`MIN_CAPACITY_FACTOR`].
        factor: f64,
    },
    /// `flaps` consecutive down/up cycles of host `host`'s link,
    /// starting at `at_secs`: down for `down_secs` (capacity pinned to
    /// [`MIN_CAPACITY_FACTOR`]), then up for `up_secs`, repeated.
    LinkFlap {
        /// Host index.
        host: u32,
        /// First flap onset, seconds.
        at_secs: f64,
        /// Number of down/up cycles.
        flaps: u32,
        /// Down phase length, seconds.
        down_secs: f64,
        /// Up phase length between flaps, seconds.
        up_secs: f64,
    },
    /// Host `host` computes at `factor` × nominal core count for
    /// `duration_secs` (an overloaded / thermally-throttled machine —
    /// the compute straggler the paper's NIC priorities cannot fix).
    ComputeSlowdown {
        /// Host index.
        host: u32,
        /// Onset, seconds.
        at_secs: f64,
        /// Window length, seconds.
        duration_secs: f64,
        /// Core-count multiplier in (0, 1]; clamped up to
        /// [`MIN_CAPACITY_FACTOR`].
        factor: f64,
    },
    /// Job `job`'s parameter-server process dies at `at_secs` and is
    /// restarted (warm, state intact) `downtime_secs` later; traffic to
    /// and from the PS retries per [`RetryConfig`] in the interim.
    PsFailure {
        /// Job index.
        job: u32,
        /// Failure instant, seconds.
        at_secs: f64,
        /// Seconds until the PS process is back.
        downtime_secs: f64,
    },
    /// The tlsd control plane stops responding for `duration_secs`:
    /// rotation ticks that fall inside the window are skipped (bands
    /// freeze). If the outage outlives `stale_after_secs`, the stale
    /// band map is declared untrustworthy and every job degrades to the
    /// FIFO default band until the outage ends, at which point the
    /// controller re-syncs from the registry.
    CtrlOutage {
        /// Onset, seconds.
        at_secs: f64,
        /// Outage length, seconds.
        duration_secs: f64,
        /// Optional staleness horizon; `None` means bands stay frozen
        /// but trusted for the whole outage.
        stale_after_secs: Option<f64>,
    },
}

/// A declarative fault-injection plan: just an ordered list of specs.
/// An empty plan is the default and costs nothing at simulation time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

/// A primitive, instantaneous state change the engine applies at one
/// simulated instant. [`FaultPlan::compile`] expands each [`FaultSpec`]
/// into one or more of these (e.g. a crash becomes `HostDown` +
/// `HostUp`; a flap burst becomes alternating `NicCapacity` actions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Host goes down: abort its flows/tasks, queue retries.
    HostDown {
        /// Host index.
        host: u32,
    },
    /// Host restarts: pending retries may now land.
    HostUp {
        /// Host index.
        host: u32,
    },
    /// Set host NIC capacity to `factor` × nominal (1.0 restores).
    NicCapacity {
        /// Host index.
        host: u32,
        /// Capacity multiplier; ≥ [`MIN_CAPACITY_FACTOR`].
        factor: f64,
    },
    /// Set host compute capacity to `factor` × nominal (1.0 restores).
    ComputeCapacity {
        /// Host index.
        host: u32,
        /// Core-count multiplier; ≥ [`MIN_CAPACITY_FACTOR`].
        factor: f64,
    },
    /// Job's PS process dies (warm state preserved).
    PsDown {
        /// Job index.
        job: u32,
    },
    /// Job's PS process is back.
    PsUp {
        /// Job index.
        job: u32,
    },
    /// Control plane stops responding; rotations freeze.
    CtrlOutageStart,
    /// The frozen band map is now stale: degrade every job to the
    /// default (FIFO) band.
    CtrlStale,
    /// Control plane is back; the engine re-syncs band state.
    CtrlOutageEnd,
}

/// One scheduled primitive action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
    /// Index of the originating [`FaultSpec`] in the plan (for
    /// telemetry and debugging).
    pub spec_index: usize,
}

/// Why a [`FaultPlan`] failed to compile.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A spec names a host ≥ the simulation's host count.
    HostOutOfRange {
        /// Offending spec index.
        spec_index: usize,
        /// The host named.
        host: u32,
        /// The simulation's host count.
        num_hosts: u32,
    },
    /// A spec names a job ≥ the simulation's job count.
    JobOutOfRange {
        /// Offending spec index.
        spec_index: usize,
        /// The job named.
        job: u32,
        /// The simulation's job count.
        num_jobs: u32,
    },
    /// A time or duration field is negative, NaN, or infinite.
    InvalidTime {
        /// Offending spec index.
        spec_index: usize,
        /// Which field.
        field: &'static str,
        /// The bad value.
        value: f64,
    },
    /// A capacity factor is not in (0, 1].
    InvalidFactor {
        /// Offending spec index.
        spec_index: usize,
        /// The bad factor.
        factor: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultPlanError::HostOutOfRange {
                spec_index,
                host,
                num_hosts,
            } => write!(
                f,
                "fault #{spec_index}: host {host} out of range (cluster has {num_hosts} hosts)"
            ),
            FaultPlanError::JobOutOfRange {
                spec_index,
                job,
                num_jobs,
            } => write!(
                f,
                "fault #{spec_index}: job {job} out of range (simulation has {num_jobs} jobs)"
            ),
            FaultPlanError::InvalidTime {
                spec_index,
                field,
                value,
            } => write!(f, "fault #{spec_index}: {field} = {value} is not a valid non-negative finite time"),
            FaultPlanError::InvalidFactor { spec_index, factor } => {
                write!(f, "fault #{spec_index}: factor {factor} not in (0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn check_time(spec_index: usize, field: &'static str, value: f64) -> Result<(), FaultPlanError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(FaultPlanError::InvalidTime {
            spec_index,
            field,
            value,
        })
    }
}

fn check_factor(spec_index: usize, factor: f64) -> Result<f64, FaultPlanError> {
    if factor.is_finite() && factor > 0.0 && factor <= 1.0 {
        Ok(factor.max(MIN_CAPACITY_FACTOR))
    } else {
        Err(FaultPlanError::InvalidFactor { spec_index, factor })
    }
}

fn check_host(spec_index: usize, host: u32, num_hosts: u32) -> Result<(), FaultPlanError> {
    if host < num_hosts {
        Ok(())
    } else {
        Err(FaultPlanError::HostOutOfRange {
            spec_index,
            host,
            num_hosts,
        })
    }
}

impl FaultPlan {
    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validate against a cluster of `num_hosts` hosts and `num_jobs`
    /// jobs, and expand into a timeline of primitive actions sorted by
    /// firing time (stable: ties keep plan order).
    pub fn compile(
        &self,
        num_hosts: u32,
        num_jobs: u32,
    ) -> Result<Vec<TimedFault>, FaultPlanError> {
        let mut timeline = Vec::new();
        let at = |s: f64| SimTime::ZERO + SimDuration::from_secs_f64(s);
        for (i, spec) in self.faults.iter().enumerate() {
            match *spec {
                FaultSpec::HostCrash {
                    host,
                    at_secs,
                    downtime_secs,
                } => {
                    check_host(i, host, num_hosts)?;
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "downtime_secs", downtime_secs)?;
                    timeline.push(TimedFault {
                        at: at(at_secs),
                        action: FaultAction::HostDown { host },
                        spec_index: i,
                    });
                    timeline.push(TimedFault {
                        at: at(at_secs + downtime_secs),
                        action: FaultAction::HostUp { host },
                        spec_index: i,
                    });
                }
                FaultSpec::NicDegrade {
                    host,
                    at_secs,
                    duration_secs,
                    factor,
                } => {
                    check_host(i, host, num_hosts)?;
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "duration_secs", duration_secs)?;
                    let factor = check_factor(i, factor)?;
                    timeline.push(TimedFault {
                        at: at(at_secs),
                        action: FaultAction::NicCapacity { host, factor },
                        spec_index: i,
                    });
                    timeline.push(TimedFault {
                        at: at(at_secs + duration_secs),
                        action: FaultAction::NicCapacity { host, factor: 1.0 },
                        spec_index: i,
                    });
                }
                FaultSpec::LinkFlap {
                    host,
                    at_secs,
                    flaps,
                    down_secs,
                    up_secs,
                } => {
                    check_host(i, host, num_hosts)?;
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "down_secs", down_secs)?;
                    check_time(i, "up_secs", up_secs)?;
                    let mut t = at_secs;
                    for _ in 0..flaps {
                        timeline.push(TimedFault {
                            at: at(t),
                            action: FaultAction::NicCapacity {
                                host,
                                factor: MIN_CAPACITY_FACTOR,
                            },
                            spec_index: i,
                        });
                        t += down_secs;
                        timeline.push(TimedFault {
                            at: at(t),
                            action: FaultAction::NicCapacity { host, factor: 1.0 },
                            spec_index: i,
                        });
                        t += up_secs;
                    }
                }
                FaultSpec::ComputeSlowdown {
                    host,
                    at_secs,
                    duration_secs,
                    factor,
                } => {
                    check_host(i, host, num_hosts)?;
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "duration_secs", duration_secs)?;
                    let factor = check_factor(i, factor)?;
                    timeline.push(TimedFault {
                        at: at(at_secs),
                        action: FaultAction::ComputeCapacity { host, factor },
                        spec_index: i,
                    });
                    timeline.push(TimedFault {
                        at: at(at_secs + duration_secs),
                        action: FaultAction::ComputeCapacity { host, factor: 1.0 },
                        spec_index: i,
                    });
                }
                FaultSpec::PsFailure {
                    job,
                    at_secs,
                    downtime_secs,
                } => {
                    if job >= num_jobs {
                        return Err(FaultPlanError::JobOutOfRange {
                            spec_index: i,
                            job,
                            num_jobs,
                        });
                    }
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "downtime_secs", downtime_secs)?;
                    timeline.push(TimedFault {
                        at: at(at_secs),
                        action: FaultAction::PsDown { job },
                        spec_index: i,
                    });
                    timeline.push(TimedFault {
                        at: at(at_secs + downtime_secs),
                        action: FaultAction::PsUp { job },
                        spec_index: i,
                    });
                }
                FaultSpec::CtrlOutage {
                    at_secs,
                    duration_secs,
                    stale_after_secs,
                } => {
                    check_time(i, "at_secs", at_secs)?;
                    check_time(i, "duration_secs", duration_secs)?;
                    timeline.push(TimedFault {
                        at: at(at_secs),
                        action: FaultAction::CtrlOutageStart,
                        spec_index: i,
                    });
                    if let Some(stale) = stale_after_secs {
                        check_time(i, "stale_after_secs", stale)?;
                        if stale < duration_secs {
                            timeline.push(TimedFault {
                                at: at(at_secs + stale),
                                action: FaultAction::CtrlStale,
                                spec_index: i,
                            });
                        }
                    }
                    timeline.push(TimedFault {
                        at: at(at_secs + duration_secs),
                        action: FaultAction::CtrlOutageEnd,
                        spec_index: i,
                    });
                }
            }
        }
        timeline.sort_by_key(|t| t.at);
        Ok(timeline)
    }

    /// Draw a random plan at a given `intensity` (expected number of
    /// faults ≈ `4 × intensity`) over the first `horizon_secs` of a run
    /// on `num_hosts` hosts and `num_jobs` jobs. Same arguments ⇒ same
    /// plan, always: this is how the failure experiments sweep
    /// intensity deterministically.
    ///
    /// `intensity = 0` yields the empty plan.
    pub fn seeded(
        seed: u64,
        intensity: f64,
        num_hosts: u32,
        num_jobs: u32,
        horizon_secs: f64,
    ) -> FaultPlan {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "invalid intensity {intensity}"
        );
        assert!(num_hosts > 0 && num_jobs > 0, "empty cluster");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_5EED);
        let count = (intensity * 4.0).round() as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let host = rng.gen_range(0..num_hosts);
            let at_secs = rng.gen_range(0.0..horizon_secs);
            // Durations sized so faults overlap real work but always
            // resolve well before any sane max_sim_time.
            let dur = rng.gen_range(0.02..0.25) * horizon_secs;
            faults.push(match rng.gen_range(0u32..6) {
                0 => FaultSpec::HostCrash {
                    host,
                    at_secs,
                    downtime_secs: dur,
                },
                1 => FaultSpec::NicDegrade {
                    host,
                    at_secs,
                    duration_secs: dur,
                    factor: rng.gen_range(0.05..0.5),
                },
                2 => FaultSpec::LinkFlap {
                    host,
                    at_secs,
                    flaps: rng.gen_range(1u32..4),
                    down_secs: dur * 0.2,
                    up_secs: dur * 0.3,
                },
                3 => FaultSpec::ComputeSlowdown {
                    host,
                    at_secs,
                    duration_secs: dur,
                    factor: rng.gen_range(0.2..0.7),
                },
                4 => FaultSpec::PsFailure {
                    job: rng.gen_range(0..num_jobs),
                    at_secs,
                    downtime_secs: dur * 0.5,
                },
                _ => FaultSpec::CtrlOutage {
                    at_secs,
                    duration_secs: dur,
                    stale_after_secs: if rng.gen_bool(0.5) {
                        Some(dur * 0.3)
                    } else {
                        None
                    },
                },
            });
        }
        FaultPlan { faults }
    }
}

/// Timeout-and-retry policy for worker pull/push traffic (and PS-side
/// compute) blocked by a down host or dead PS: a blocked transfer waits
/// `timeout`, then retries with exponential backoff starting at
/// `base_backoff` and capped at `max_backoff` ("bounded": the *backoff*
/// is bounded; retries continue until the target recovers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Delay before the first retry of blocked work, seconds.
    pub timeout_secs: f64,
    /// First backoff step, seconds.
    pub base_backoff_secs: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_secs: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout_secs: 0.5,
            base_backoff_secs: 0.5,
            max_backoff_secs: 8.0,
        }
    }
}

impl RetryConfig {
    /// Delay before retry number `attempt` (1-based): `timeout` for the
    /// first, then `min(base × 2^(attempt-2), max)` thereafter.
    pub fn delay_for_attempt(&self, attempt: u32) -> SimDuration {
        let secs = if attempt <= 1 {
            self.timeout_secs
        } else {
            let backoff = self.base_backoff_secs * f64::powi(2.0, attempt as i32 - 2);
            backoff.min(self.max_backoff_secs)
        };
        SimDuration::from_secs_f64(secs.max(1e-9))
    }
}

/// What a synchronous-SGD barrier does when a worker's host crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BarrierLossPolicy {
    /// The barrier waits: the job makes no progress until the worker's
    /// host restarts and its traffic retries through (TensorFlow's
    /// classic sync behavior). The default.
    #[default]
    StallUntilRecovery,
    /// The lost worker is dropped from the barrier and the job
    /// continues with a reduced effective batch (`num_workers - lost`
    /// gradients per step); the worker rejoins at the next round
    /// boundary after its host recovers.
    DropAndContinue,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_compiles_to_empty_timeline() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.compile(4, 2).unwrap(), Vec::new());
    }

    #[test]
    fn crash_expands_to_down_then_up() {
        let plan = FaultPlan {
            faults: vec![FaultSpec::HostCrash {
                host: 1,
                at_secs: 2.0,
                downtime_secs: 3.0,
            }],
        };
        let tl = plan.compile(4, 1).unwrap();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].action, FaultAction::HostDown { host: 1 });
        assert_eq!(tl[0].at, SimTime::from_secs(2));
        assert_eq!(tl[1].action, FaultAction::HostUp { host: 1 });
        assert_eq!(tl[1].at, SimTime::from_secs(5));
    }

    #[test]
    fn flap_burst_alternates_and_sorts() {
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::LinkFlap {
                    host: 0,
                    at_secs: 10.0,
                    flaps: 2,
                    down_secs: 1.0,
                    up_secs: 1.0,
                },
                FaultSpec::NicDegrade {
                    host: 2,
                    at_secs: 0.5,
                    duration_secs: 1.0,
                    factor: 0.25,
                },
            ],
        };
        let tl = plan.compile(4, 1).unwrap();
        assert_eq!(tl.len(), 6);
        // Sorted: the degrade (t=0.5, 1.5) precedes the flaps (t=10..).
        assert_eq!(
            tl[0].action,
            FaultAction::NicCapacity {
                host: 2,
                factor: 0.25
            }
        );
        assert_eq!(tl[2].spec_index, 0);
        let downs = tl
            .iter()
            .filter(
                |t| matches!(t.action, FaultAction::NicCapacity { host: 0, factor } if factor < 1e-3),
            )
            .count();
        assert_eq!(downs, 2);
    }

    #[test]
    fn ctrl_outage_emits_stale_only_inside_window() {
        let stale = FaultPlan {
            faults: vec![FaultSpec::CtrlOutage {
                at_secs: 1.0,
                duration_secs: 10.0,
                stale_after_secs: Some(2.0),
            }],
        };
        let tl = stale.compile(1, 1).unwrap();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[1].action, FaultAction::CtrlStale);

        let never_stale = FaultPlan {
            faults: vec![FaultSpec::CtrlOutage {
                at_secs: 1.0,
                duration_secs: 10.0,
                stale_after_secs: Some(20.0),
            }],
        };
        assert_eq!(never_stale.compile(1, 1).unwrap().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let bad_host = FaultPlan {
            faults: vec![FaultSpec::HostCrash {
                host: 9,
                at_secs: 0.0,
                downtime_secs: 1.0,
            }],
        };
        assert!(matches!(
            bad_host.compile(4, 1),
            Err(FaultPlanError::HostOutOfRange { host: 9, .. })
        ));

        let bad_job = FaultPlan {
            faults: vec![FaultSpec::PsFailure {
                job: 3,
                at_secs: 0.0,
                downtime_secs: 1.0,
            }],
        };
        assert!(matches!(
            bad_job.compile(4, 2),
            Err(FaultPlanError::JobOutOfRange { job: 3, .. })
        ));

        let bad_time = FaultPlan {
            faults: vec![FaultSpec::HostCrash {
                host: 0,
                at_secs: -1.0,
                downtime_secs: 1.0,
            }],
        };
        assert!(matches!(
            bad_time.compile(4, 1),
            Err(FaultPlanError::InvalidTime { field: "at_secs", .. })
        ));

        let bad_factor = FaultPlan {
            faults: vec![FaultSpec::NicDegrade {
                host: 0,
                at_secs: 0.0,
                duration_secs: 1.0,
                factor: 1.5,
            }],
        };
        assert!(matches!(
            bad_factor.compile(4, 1),
            Err(FaultPlanError::InvalidFactor { factor, .. }) if factor == 1.5
        ));
        // The error renders.
        let msg = bad_factor.compile(4, 1).unwrap_err().to_string();
        assert!(msg.contains("factor"), "{msg}");
    }

    #[test]
    fn tiny_factors_clamp_to_positive() {
        let plan = FaultPlan {
            faults: vec![FaultSpec::NicDegrade {
                host: 0,
                at_secs: 0.0,
                duration_secs: 1.0,
                factor: 1e-12,
            }],
        };
        let tl = plan.compile(1, 1).unwrap();
        match tl[0].action {
            FaultAction::NicCapacity { factor, .. } => {
                assert!(factor >= MIN_CAPACITY_FACTOR)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_scale() {
        let a = FaultPlan::seeded(7, 2.0, 21, 21, 100.0);
        let b = FaultPlan::seeded(7, 2.0, 21, 21, 100.0);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        assert!(a.compile(21, 21).is_ok());
        assert!(FaultPlan::seeded(7, 0.0, 21, 21, 100.0).is_empty());
        // A different seed gives a different plan.
        assert_ne!(a, FaultPlan::seeded(8, 2.0, 21, 21, 100.0));
    }

    #[test]
    fn retry_backoff_is_bounded() {
        let r = RetryConfig::default();
        assert_eq!(r.delay_for_attempt(1), SimDuration::from_secs_f64(0.5));
        assert_eq!(r.delay_for_attempt(2), SimDuration::from_secs_f64(0.5));
        assert_eq!(r.delay_for_attempt(3), SimDuration::from_secs_f64(1.0));
        assert_eq!(r.delay_for_attempt(10), SimDuration::from_secs_f64(8.0));
        assert_eq!(r.delay_for_attempt(30), SimDuration::from_secs_f64(8.0));
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let plan = FaultPlan::seeded(3, 1.5, 8, 4, 50.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
