//! # tl-workloads — workload generators
//!
//! Builds the job sets the paper's evaluation runs:
//!
//! * [`GridSearchConfig`] — the §III workload: N identical ResNet-32 jobs
//!   (grid search), launched with a small stagger "to avoid overloading RPC
//!   or SSH connections";
//! * [`heterogeneous_mix`] — jobs over a mix of model sizes, for the
//!   smallest-update-first ordering ablation;
//! * [`poisson_arrivals`] — open-loop job arrivals for arrival/departure
//!   dynamics (TLs-One reconfigures on churn);
//! * [`scenario`] — declarative JSON scenario files for arbitrary job
//!   mixes (see the `custom_scenario` example).

#![warn(missing_docs)]

pub mod scenario;

use rand::Rng;
use simcore::{SimDuration, SimTime};
use tl_cluster::Placement;
use tl_dl::{JobId, JobSetup, JobSpec, ModelSpec, TrainingMode};

pub use scenario::{load_scenario, ScenarioError, ScenarioFile, ScenarioJob};

/// Configuration of a grid-search workload (the paper's §III).
#[derive(Debug, Clone)]
pub struct GridSearchConfig {
    /// Number of concurrent jobs.
    pub num_jobs: u32,
    /// Workers per job.
    pub workers_per_job: u32,
    /// The model every instance trains.
    pub model: ModelSpec,
    /// Local batch size (the paper's contention-intensity knob).
    pub local_batch_size: u32,
    /// Stop at this global step.
    pub target_global_steps: u64,
    /// Delay between consecutive launches (the paper: 0.1 s).
    pub launch_stagger: SimDuration,
    /// Synchronous or asynchronous training.
    pub mode: TrainingMode,
    /// First PS port; job `i` uses `base_port + i`.
    pub base_port: u16,
}

impl GridSearchConfig {
    /// The paper's exact workload: 21 jobs × (1 PS + 20 workers),
    /// ResNet-32/CIFAR-10, local batch 4, 30 000 global steps,
    /// 0.1 s launch stagger.
    pub fn paper() -> Self {
        GridSearchConfig {
            num_jobs: 21,
            workers_per_job: 20,
            model: ModelSpec::resnet32(),
            local_batch_size: 4,
            target_global_steps: 30_000,
            launch_stagger: SimDuration::from_millis(100),
            mode: TrainingMode::Synchronous,
            base_port: 2222,
        }
    }

    /// The paper's workload scaled down to `iterations` synchronous
    /// iterations (the shape of every result is iteration-count invariant;
    /// this keeps full-matrix reproductions tractable).
    pub fn paper_scaled(iterations: u64) -> Self {
        let mut cfg = Self::paper();
        cfg.target_global_steps = iterations * cfg.workers_per_job as u64;
        cfg
    }

    /// Total synchronous iterations each job will run.
    pub fn iterations(&self) -> u64 {
        self.target_global_steps
            .div_ceil(self.workers_per_job as u64)
    }

    /// Materialize the job set on a placement (panics on shape mismatch).
    pub fn build(&self, placement: &Placement) -> Vec<JobSetup> {
        assert_eq!(
            placement.jobs.len(),
            self.num_jobs as usize,
            "placement has {} jobs, workload expects {}",
            placement.jobs.len(),
            self.num_jobs
        );
        (0..self.num_jobs)
            .map(|i| {
                let jp = &placement.jobs[i as usize];
                assert_eq!(
                    jp.worker_hosts.len(),
                    self.workers_per_job as usize,
                    "job {i}: placement worker count mismatch"
                );
                JobSetup {
                    spec: JobSpec {
                        id: JobId(i),
                        model: self.model.clone(),
                        num_workers: self.workers_per_job,
                        local_batch_size: self.local_batch_size,
                        target_global_steps: self.target_global_steps,
                        mode: self.mode,
                        launch_time: SimTime::ZERO
                            + SimDuration::from_nanos(self.launch_stagger.as_nanos() * i as u64),
                        ps_port: self.base_port + i as u16,
                        pattern: None,
                    },
                    placement: jp.clone(),
                }
            })
            .collect()
    }
}

/// A grid-search-shaped workload where job `i` trains `models[i % len]` —
/// heterogeneous update sizes for the head-of-line-blocking ablation.
pub fn heterogeneous_mix(
    base: &GridSearchConfig,
    models: &[ModelSpec],
    placement: &Placement,
) -> Vec<JobSetup> {
    assert!(!models.is_empty(), "need at least one model");
    let mut setups = base.build(placement);
    for (i, s) in setups.iter_mut().enumerate() {
        s.spec.model = models[i % models.len()].clone();
    }
    setups
}

/// Draw `n` Poisson arrival times with the given mean inter-arrival gap.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    mean_gap: SimDuration,
) -> Vec<SimTime> {
    assert!(!mean_gap.is_zero(), "mean gap must be positive");
    let rate = 1.0 / mean_gap.as_secs_f64();
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += simcore::rng::sample_exponential(rng, rate);
            SimTime::from_secs_f64(t)
        })
        .collect()
}

/// Apply arrival times to a job set (e.g. from [`poisson_arrivals`]).
pub fn with_arrivals(mut setups: Vec<JobSetup>, arrivals: &[SimTime]) -> Vec<JobSetup> {
    assert_eq!(setups.len(), arrivals.len(), "one arrival per job");
    for (s, &t) in setups.iter_mut().zip(arrivals) {
        s.spec.launch_time = t;
    }
    setups
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::RngFactory;
    use tl_cluster::{table1_placement, Table1Index};

    #[test]
    fn paper_workload_matches_section_iii() {
        let cfg = GridSearchConfig::paper();
        assert_eq!(cfg.num_jobs, 21);
        assert_eq!(cfg.workers_per_job, 20);
        assert_eq!(cfg.local_batch_size, 4);
        assert_eq!(cfg.target_global_steps, 30_000);
        assert_eq!(cfg.iterations(), 1500);
    }

    #[test]
    fn build_produces_staggered_launches() {
        let cfg = GridSearchConfig::paper_scaled(10);
        let p = table1_placement(Table1Index(1), 21, 21);
        let setups = cfg.build(&p);
        assert_eq!(setups.len(), 21);
        assert_eq!(setups[0].spec.launch_time, SimTime::ZERO);
        assert_eq!(setups[1].spec.launch_time, SimTime::from_millis(100));
        assert_eq!(setups[20].spec.launch_time, SimTime::from_secs(2));
        // Ports are distinct per job (tc filters key on them).
        let mut ports: Vec<u16> = setups.iter().map(|s| s.spec.ps_port).collect();
        ports.dedup();
        assert_eq!(ports.len(), 21);
    }

    #[test]
    fn scaled_preserves_everything_but_steps() {
        let a = GridSearchConfig::paper();
        let b = GridSearchConfig::paper_scaled(300);
        assert_eq!(b.target_global_steps, 6000);
        assert_eq!(b.iterations(), 300);
        assert_eq!(a.local_batch_size, b.local_batch_size);
        assert_eq!(a.num_jobs, b.num_jobs);
    }

    #[test]
    #[should_panic(expected = "placement has")]
    fn build_rejects_wrong_placement() {
        let cfg = GridSearchConfig::paper();
        let p = table1_placement(Table1Index(1), 11, 10);
        let _ = cfg.build(&p);
    }

    #[test]
    fn heterogeneous_mix_cycles_models() {
        let cfg = GridSearchConfig::paper_scaled(10);
        let p = table1_placement(Table1Index(1), 21, 21);
        let models = [ModelSpec::resnet32(), ModelSpec::alexnet()];
        let setups = heterogeneous_mix(&cfg, &models, &p);
        assert_eq!(setups[0].spec.model.name, "resnet32-cifar10");
        assert_eq!(setups[1].spec.model.name, "alexnet");
        assert_eq!(setups[2].spec.model.name, "resnet32-cifar10");
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_scale() {
        let mut rng = RngFactory::new(5).stream("arrivals");
        let arr = poisson_arrivals(&mut rng, 1000, SimDuration::from_secs(10));
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = arr.last().unwrap().as_secs_f64() / 1000.0;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn async_workload_builds() {
        let mut cfg = GridSearchConfig::paper_scaled(5);
        cfg.mode = TrainingMode::Asynchronous;
        let p = table1_placement(Table1Index(8), 21, 21);
        let setups = cfg.build(&p);
        assert!(setups
            .iter()
            .all(|s| s.spec.mode == TrainingMode::Asynchronous));
    }

    #[test]
    fn with_arrivals_overrides_launches() {
        let cfg = GridSearchConfig::paper_scaled(5);
        let p = table1_placement(Table1Index(8), 21, 21);
        let arrivals: Vec<SimTime> = (0..21).map(|i| SimTime::from_secs(i * 7)).collect();
        let setups = with_arrivals(cfg.build(&p), &arrivals);
        assert_eq!(setups[3].spec.launch_time, SimTime::from_secs(21));
    }
}
