//! Scenario files: declarative job mixes in JSON.
//!
//! Lets a user describe an arbitrary cluster workload — models, worker
//! counts, batch sizes, training modes, launch times, and (optionally)
//! explicit placements — without writing Rust. The `custom_scenario`
//! example runs such a file under every policy.
//!
//! ```json
//! {
//!   "hosts": 8,
//!   "jobs": [
//!     { "model": "resnet32", "workers": 4, "iterations": 50 },
//!     { "model": "synthetic:100", "workers": 4, "batch": 1,
//!       "ps_host": 0, "launch_secs": 2.5 }
//!   ]
//! }
//! ```

use serde::Deserialize;
use simcore::SimTime;
use std::fmt;
use tl_cluster::JobPlacement;
use tl_dl::{JobId, JobSetup, JobSpec, ModelSpec, TrainingMode};
use tl_net::HostId;

/// A whole scenario file.
#[derive(Debug, Clone, Deserialize)]
pub struct ScenarioFile {
    /// Number of hosts in the cluster.
    pub hosts: u32,
    /// Jobs to run.
    pub jobs: Vec<ScenarioJob>,
}

/// One job in a scenario file.
#[derive(Debug, Clone, Deserialize)]
pub struct ScenarioJob {
    /// Model name: `resnet32`, `resnet50`, `inception_v3`, `vgg16`,
    /// `alexnet`, or `synthetic:<megabytes>`.
    pub model: String,
    /// Number of workers.
    pub workers: u32,
    /// Local batch size (default 4).
    #[serde(default = "default_batch")]
    pub batch: u32,
    /// Synchronous iterations to run (default 100).
    #[serde(default = "default_iterations")]
    pub iterations: u64,
    /// `"sync"` (default) or `"async"`.
    #[serde(default)]
    pub mode: Option<String>,
    /// Launch time in seconds (default: 0.1 s × job index, the paper's
    /// stagger).
    #[serde(default)]
    pub launch_secs: Option<f64>,
    /// Host for the PS (default: job index modulo hosts).
    #[serde(default)]
    pub ps_host: Option<u32>,
    /// Explicit worker hosts (default: the cyclic run after the PS host).
    #[serde(default)]
    pub worker_hosts: Option<Vec<u32>>,
}

fn default_batch() -> u32 {
    4
}
fn default_iterations() -> u64 {
    100
}

/// Why a scenario was rejected.
#[derive(Debug)]
pub enum ScenarioError {
    /// The JSON did not parse.
    Json(serde_json::Error),
    /// A semantic problem, described.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "scenario JSON: {e}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Json(e)
    }
}

fn parse_model(name: &str) -> Result<ModelSpec, ScenarioError> {
    if let Some(mb) = name.strip_prefix("synthetic:") {
        let mb: u64 = mb
            .parse()
            .map_err(|_| ScenarioError::Invalid(format!("bad synthetic size in {name:?}")))?;
        if mb == 0 {
            return Err(ScenarioError::Invalid("synthetic model of 0 MB".into()));
        }
        return Ok(ModelSpec::synthetic_mb(mb));
    }
    match name {
        "resnet32" => Ok(ModelSpec::resnet32()),
        "resnet50" => Ok(ModelSpec::resnet50()),
        "inception_v3" => Ok(ModelSpec::inception_v3()),
        "vgg16" => Ok(ModelSpec::vgg16()),
        "alexnet" => Ok(ModelSpec::alexnet()),
        other => Err(ScenarioError::Invalid(format!("unknown model {other:?}"))),
    }
}

/// Parse and validate a scenario, producing ready-to-run job setups.
pub fn load_scenario(json: &str) -> Result<Vec<JobSetup>, ScenarioError> {
    let file: ScenarioFile = serde_json::from_str(json)?;
    if file.hosts == 0 {
        return Err(ScenarioError::Invalid("scenario needs hosts".into()));
    }
    if file.jobs.is_empty() {
        return Err(ScenarioError::Invalid("scenario needs jobs".into()));
    }
    let mut setups = Vec::with_capacity(file.jobs.len());
    for (i, j) in file.jobs.iter().enumerate() {
        let model = parse_model(&j.model)?;
        if j.workers == 0 {
            return Err(ScenarioError::Invalid(format!("job {i} has no workers")));
        }
        if j.workers >= file.hosts {
            return Err(ScenarioError::Invalid(format!(
                "job {i}: {} workers do not fit {} hosts (PS needs its own host)",
                j.workers, file.hosts
            )));
        }
        let mode = match j.mode.as_deref() {
            None | Some("sync") => TrainingMode::Synchronous,
            Some("async") => TrainingMode::Asynchronous,
            Some(other) => {
                return Err(ScenarioError::Invalid(format!(
                    "job {i}: unknown mode {other:?}"
                )))
            }
        };
        let ps_host = j.ps_host.unwrap_or(i as u32 % file.hosts);
        if ps_host >= file.hosts {
            return Err(ScenarioError::Invalid(format!(
                "job {i}: ps_host {ps_host} out of range"
            )));
        }
        let worker_hosts: Vec<HostId> = match &j.worker_hosts {
            Some(hosts) => {
                if hosts.len() != j.workers as usize {
                    return Err(ScenarioError::Invalid(format!(
                        "job {i}: {} worker_hosts for {} workers",
                        hosts.len(),
                        j.workers
                    )));
                }
                for &h in hosts {
                    if h >= file.hosts {
                        return Err(ScenarioError::Invalid(format!(
                            "job {i}: worker host {h} out of range"
                        )));
                    }
                    if h == ps_host {
                        return Err(ScenarioError::Invalid(format!(
                            "job {i}: worker on its own PS host {h}"
                        )));
                    }
                }
                hosts.iter().map(|&h| HostId(h)).collect()
            }
            None => (0..j.workers)
                .map(|w| HostId((ps_host + 1 + w) % file.hosts))
                .collect(),
        };
        let launch = match j.launch_secs {
            Some(s) if s >= 0.0 => SimTime::from_secs_f64(s),
            Some(s) => {
                return Err(ScenarioError::Invalid(format!(
                    "job {i}: negative launch time {s}"
                )))
            }
            None => SimTime::from_secs_f64(0.1 * i as f64),
        };
        setups.push(JobSetup {
            spec: JobSpec {
                id: JobId(i as u32),
                num_workers: j.workers,
                local_batch_size: j.batch,
                target_global_steps: j.iterations * j.workers as u64,
                mode,
                launch_time: launch,
                ps_port: 2222 + i as u16,
                pattern: None,
                model,
            },
            placement: JobPlacement::new(HostId(ps_host), worker_hosts),
        });
    }
    Ok(setups)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "hosts": 4,
        "jobs": [
            { "model": "resnet32", "workers": 3 },
            { "model": "synthetic:50", "workers": 2, "batch": 1,
              "iterations": 7, "mode": "async", "ps_host": 0,
              "launch_secs": 2.5 }
        ]
    }"#;

    #[test]
    fn loads_minimal_scenario() {
        let setups = load_scenario(MINIMAL).expect("valid scenario");
        assert_eq!(setups.len(), 2);
        let a = &setups[0];
        assert_eq!(a.spec.num_workers, 3);
        assert_eq!(a.spec.local_batch_size, 4, "defaults");
        assert_eq!(a.spec.target_global_steps, 300);
        assert_eq!(a.spec.mode, TrainingMode::Synchronous);
        assert_eq!(a.placement.ps_host(), HostId(0));
        assert_eq!(a.spec.launch_time, SimTime::ZERO);

        let b = &setups[1];
        assert_eq!(b.spec.model.update_bytes(), 50_000_000);
        assert_eq!(b.spec.mode, TrainingMode::Asynchronous);
        assert_eq!(b.spec.target_global_steps, 14);
        assert_eq!(b.spec.launch_time, SimTime::from_secs_f64(2.5));
        assert_eq!(b.placement.ps_host(), HostId(0));
        // Default worker hosts avoid the PS host.
        assert!(!b.placement.worker_hosts.contains(&b.placement.ps_host()));
    }

    #[test]
    fn explicit_worker_hosts_respected() {
        let json = r#"{"hosts": 5, "jobs": [
            { "model": "alexnet", "workers": 2, "ps_host": 1,
              "worker_hosts": [3, 4] }
        ]}"#;
        let setups = load_scenario(json).expect("valid");
        assert_eq!(setups[0].placement.worker_hosts, vec![HostId(3), HostId(4)]);
    }

    #[test]
    fn rejects_unknown_model() {
        let json = r#"{"hosts": 4, "jobs": [{ "model": "gpt5", "workers": 2 }]}"#;
        let err = load_scenario(json).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn rejects_semantic_errors() {
        for (json, needle) in [
            (r#"{"hosts": 0, "jobs": []}"#, "needs hosts"),
            (r#"{"hosts": 4, "jobs": []}"#, "needs jobs"),
            (
                r#"{"hosts": 3, "jobs": [{"model": "resnet32", "workers": 3}]}"#,
                "do not fit",
            ),
            (
                r#"{"hosts": 4, "jobs": [{"model": "resnet32", "workers": 2, "ps_host": 9}]}"#,
                "out of range",
            ),
            (
                r#"{"hosts": 4, "jobs": [{"model": "resnet32", "workers": 2,
                    "ps_host": 0, "worker_hosts": [0, 1]}]}"#,
                "own PS host",
            ),
            (
                r#"{"hosts": 4, "jobs": [{"model": "resnet32", "workers": 2,
                    "mode": "lockstep"}]}"#,
                "unknown mode",
            ),
            (
                r#"{"hosts": 4, "jobs": [{"model": "synthetic:0", "workers": 2}]}"#,
                "0 MB",
            ),
        ] {
            let err = load_scenario(json).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{json} -> {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn rejects_bad_json() {
        assert!(matches!(
            load_scenario("{nope"),
            Err(ScenarioError::Json(_))
        ));
    }

    #[test]
    fn scenario_runs_end_to_end() {
        use tensorlights::FifoPolicy;
        let setups = load_scenario(MINIMAL).expect("valid");
        let mut policy = FifoPolicy;
        let out = tl_dl::Simulation::new(tl_dl::SimConfig::default())
            .jobs(setups)
            .policy_ref(&mut policy)
            .run();
        assert!(out.all_complete());
    }
}
