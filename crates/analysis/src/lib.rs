//! # tl-analysis — explain every JCT
//!
//! Consumes the typed [`tl_telemetry::SimEvent`] stream a simulation
//! recorded and produces, per completed job:
//!
//! * a **JCT decomposition** — compute, exclusive network service,
//!   contention wait, priority-band throttling, barrier wait, and
//!   fault-recovery time, in integer nanoseconds that sum *exactly* to
//!   the job completion time (conservation is checked, not hoped for);
//! * a **blame matrix** — which competing jobs, on which links (host
//!   NICs vs rack uplinks/downlinks), the job's wait time is
//!   attributable to;
//! * a **critical path** — the chain of flows and compute tasks whose
//!   completion times gate the job's completion, extracted by a backward
//!   walk over the activity DAG, with un-covered spans labeled by what
//!   the job was waiting on.
//!
//! The analyzer is a pure function of `(events, topology)`: it replays
//! the event stream chronologically, classifying every inter-event
//! interval of every live job by a fixed priority rule (network →
//! barrier → compute → fault recovery → idle). Within network
//! intervals the exclusive/wait split uses the ratio of the job's
//! achieved rates to its *solo* rates (what its flows would get with no
//! competitors, approximated as an equal split of each link among the
//! job's own flows — self-contention is therefore *not* blamed on
//! anyone). Because the split rounds to whole nanoseconds and the two
//! parts are computed as `exclusive` and `dt − exclusive`, conservation
//! holds by construction.
//!
//! Determinism: all state lives in `BTreeMap`s/`BTreeSet`s keyed by
//! event-carried integers, ties are broken by fixed total orders, and
//! float arithmetic is IEEE-deterministic — two identical event streams
//! explain to byte-identical JSON (asserted by the `explain`
//! integration tests).
//!
//! Known approximations, documented rather than hidden:
//!
//! * solo rates use the topology's *static* link capacities; a NIC
//!   degraded by a fault keeps its nominal capacity in the denominator
//!   (the lost headroom shows up as contention blamed on the sharing
//!   jobs, or as exclusive service when the job is alone);
//! * barrier wait is *straggler-held* time: intervals where at least
//!   one worker sits in a barrier and no flow of the job is in flight
//!   (stragglers may still be computing — the barrier, not the compute,
//!   is what gates the round).

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use tl_net::{HostId, LinkId, Topology};
use tl_telemetry::{SimEvent, TimedEvent};

/// Bit set on flow tags that carry gradients rather than model updates
/// (the `tl-dl` engine's tag scheme: `job` or `GRAD_TAG_BASE | job`).
const GRAD_TAG_BASE: u64 = 1 << 32;

/// Owning job of a flow tag under the engine's tag scheme.
fn job_of_tag(tag: u64) -> u64 {
    tag & (GRAD_TAG_BASE - 1)
}

/// What a job's time was spent on during one inter-event interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Category {
    Network,
    BarrierWait,
    Compute,
    FaultRecovery,
    Other,
}

impl Category {
    fn label(self) -> &'static str {
        match self {
            Category::Network => "network",
            Category::BarrierWait => "barrier",
            Category::Compute => "compute",
            Category::FaultRecovery => "fault_recovery",
            Category::Other => "idle",
        }
    }
}

/// A shared resource a flow occupies; the unit of blame attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LinkKey {
    /// Host NIC, outbound.
    Egress(u32),
    /// Host NIC, inbound.
    Ingress(u32),
    /// Fabric (rack uplink/downlink) by `LinkId` index.
    Fabric(u32),
}

impl LinkKey {
    fn label(self, topo: &Topology) -> String {
        match self {
            LinkKey::Egress(h) => format!("host{h}.egress"),
            LinkKey::Ingress(h) => format!("host{h}.ingress"),
            LinkKey::Fabric(l) => topo.fabric_label(LinkId(l)),
        }
    }

    fn capacity(self, topo: &Topology) -> f64 {
        match self {
            LinkKey::Egress(h) => topo.egress(HostId(h)).bytes_per_sec(),
            LinkKey::Ingress(h) => topo.ingress(HostId(h)).bytes_per_sec(),
            LinkKey::Fabric(l) => topo.fabric_capacity(LinkId(l)).bytes_per_sec(),
        }
    }
}

/// An in-flight flow during the sweep.
#[derive(Debug, Clone)]
struct FlowSt {
    job: u64,
    tag: u64,
    band: u8,
    /// Latest allocator share (from `FlowShareChange`), bytes/sec.
    rate: Option<f64>,
    /// Whole-life average rate (from the `FlowFinish` pre-pass),
    /// bytes/sec — the fallback when no share events exist (packet
    /// backend) or none has arrived yet.
    avg: Option<f64>,
    /// Links the flow occupies, in traversal order; empty for loopback.
    links: Vec<LinkKey>,
    /// Same-host transfer: capped by the loopback rate, contends with
    /// nobody.
    loopback: bool,
}

/// One finished unit of work, a node of the critical-path DAG.
#[derive(Debug, Clone)]
struct Activity {
    /// Total order for tie-breaks: `(kind, engine id)`.
    sort_id: (u8, u64),
    label: String,
    start: u64,
    finish: u64,
}

#[derive(Debug, Default)]
struct JobSt {
    launch: Option<u64>,
    completion: Option<u64>,
    in_barrier: BTreeSet<u32>,
    active_tasks: u64,
    /// Outstanding backed-off retries (fault-displaced work).
    blocked: u64,
    breakdown: JctBreakdown,
    blame: BTreeMap<(String, u64), u64>,
    /// Classified interval runs `(start, end, category)`, merged.
    runs: Vec<(u64, u64, Category)>,
    activities: Vec<Activity>,
}

impl JobSt {
    fn live_at(&self, t: u64) -> bool {
        self.completion.is_none() && self.launch.is_some_and(|l| l <= t)
    }

    fn push_run(&mut self, start: u64, end: u64, cat: Category) {
        if let Some(last) = self.runs.last_mut() {
            if last.2 == cat && last.1 == start {
                last.1 = end;
                return;
            }
        }
        self.runs.push((start, end, cat));
    }
}

/// Integer-nanosecond decomposition of one job's completion time. The
/// seven components sum exactly to the JCT (see
/// [`JobExplanation::conserves`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JctBreakdown {
    /// Local compute (worker steps, PS aggregation) with no flow in
    /// flight and no barrier held.
    pub compute_ns: u64,
    /// Network service the job would also have needed running alone.
    pub net_exclusive_ns: u64,
    /// Extra network time attributable to same-band competitors.
    pub net_contention_ns: u64,
    /// Extra network time spent behind strictly higher-priority bands.
    pub band_throttle_ns: u64,
    /// Barrier held with no flow in flight (straggler-gated time).
    pub barrier_wait_ns: u64,
    /// Fault-displaced work backing off before its retry resumed.
    pub fault_recovery_ns: u64,
    /// Anything else (launch gaps, unmodeled stalls).
    pub other_ns: u64,
}

impl JctBreakdown {
    /// Sum of all components.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns
            + self.net_exclusive_ns
            + self.net_contention_ns
            + self.band_throttle_ns
            + self.barrier_wait_ns
            + self.fault_recovery_ns
            + self.other_ns
    }

    /// Total time waiting on others (contention + band throttle).
    pub fn wait_ns(&self) -> u64 {
        self.net_contention_ns + self.band_throttle_ns
    }
}

/// One cell of the blame matrix: `wait_ns` of the explained job's
/// contention/throttle time attributed to `job` on `link`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameEntry {
    /// Shared resource (`host{h}.egress`, `host{h}.ingress`,
    /// `rack{r}.up`, `rack{r}.down`).
    pub link: String,
    /// The competing job the time is blamed on.
    pub job: u64,
    /// Nanoseconds of wait attributed to this `(link, job)` pair.
    pub wait_ns: u64,
}

/// One segment of a job's critical path, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    /// What gated the job: a flow (`model 0->3`, `grad 3->0`), a task
    /// (`worker_step[2]`), or a wait (`wait:barrier`).
    pub label: String,
    /// Segment start, nanoseconds.
    pub start_ns: u64,
    /// Segment end, nanoseconds.
    pub end_ns: u64,
}

/// Everything the analyzer can say about one completed job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobExplanation {
    /// Job index (the engine's tag scheme).
    pub job: u64,
    /// Launch time, nanoseconds.
    pub launch_ns: u64,
    /// Completion time, nanoseconds.
    pub completion_ns: u64,
    /// Job completion time (`completion - launch`), nanoseconds.
    pub jct_ns: u64,
    /// Where the JCT went; components sum exactly to `jct_ns`.
    pub breakdown: JctBreakdown,
    /// Blame matrix rows, sorted by descending wait then link then job.
    pub blame: Vec<BlameEntry>,
    /// Critical path from launch to completion, chronological.
    pub critical_path: Vec<PathSegment>,
}

impl JobExplanation {
    /// True when the decomposition sums exactly to the JCT — the
    /// analyzer's core correctness invariant.
    pub fn conserves(&self) -> bool {
        self.breakdown.total_ns() == self.jct_ns
    }
}

/// The analyzer's output: one [`JobExplanation`] per completed job, in
/// job order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Per-job explanations, sorted by job index.
    pub jobs: Vec<JobExplanation>,
}

impl AnalysisReport {
    /// The explanation for `job`, if it completed.
    pub fn job(&self, job: u64) -> Option<&JobExplanation> {
        self.jobs.iter().find(|j| j.job == job)
    }

    /// Verify every job's decomposition sums exactly to its JCT.
    pub fn check_conservation(&self) -> Result<(), String> {
        for j in &self.jobs {
            if !j.conserves() {
                return Err(format!(
                    "job {}: decomposition sums to {} ns but JCT is {} ns",
                    j.job,
                    j.breakdown.total_ns(),
                    j.jct_ns
                ));
            }
        }
        Ok(())
    }

    /// Human-readable report, one block per job.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            let jct = j.jct_ns as f64 / 1e9;
            out.push_str(&format!("job {}: JCT {:.3}s\n", j.job, jct));
            let pct = |v: u64| {
                if j.jct_ns == 0 {
                    0.0
                } else {
                    100.0 * v as f64 / j.jct_ns as f64
                }
            };
            let b = &j.breakdown;
            for (name, v) in [
                ("compute", b.compute_ns),
                ("net exclusive", b.net_exclusive_ns),
                ("net contention", b.net_contention_ns),
                ("band throttle", b.band_throttle_ns),
                ("barrier wait", b.barrier_wait_ns),
                ("fault recovery", b.fault_recovery_ns),
                ("other", b.other_ns),
            ] {
                if v > 0 {
                    out.push_str(&format!(
                        "  {name:<16} {:>9.3}s  ({:>5.1}%)\n",
                        v as f64 / 1e9,
                        pct(v)
                    ));
                }
            }
            for e in j.blame.iter().take(6) {
                out.push_str(&format!(
                    "  blame {:<22} <- job {}  {:.3}s\n",
                    e.link,
                    e.job,
                    e.wait_ns as f64 / 1e9
                ));
            }
            out.push_str(&format!(
                "  critical path: {} segments\n",
                j.critical_path.len()
            ));
        }
        out
    }

    /// Pretty JSON export (deterministic for a given event stream).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis JSON render")
    }
}

/// Explain every completed job in `events`, run over `topo`.
///
/// `events` must be in emission order (what
/// [`tl_telemetry::TelemetryOutput`] stores); `topo` must be the
/// topology the simulation ran on, so routes and capacities resolve.
pub fn explain(events: &[TimedEvent], topo: &Topology) -> AnalysisReport {
    // Pre-pass: whole-life average rate per flow, the share fallback.
    let mut avg_rate: BTreeMap<u64, f64> = BTreeMap::new();
    for ev in events {
        if let SimEvent::FlowFinish {
            flow,
            bytes,
            started,
            ..
        } = ev.event
        {
            let dur = ev.at.as_nanos().saturating_sub(started.as_nanos());
            if dur > 0 {
                avg_rate.insert(flow, bytes / (dur as f64 / 1e9));
            }
        }
    }

    let mut jobs: BTreeMap<u64, JobSt> = BTreeMap::new();
    let mut flows: BTreeMap<u64, FlowSt> = BTreeMap::new();
    let mut prev_t: u64 = 0;

    for ev in events {
        let t = ev.at.as_nanos();
        if t > prev_t {
            sweep_interval(&mut jobs, &flows, topo, prev_t, t);
            prev_t = t;
        }
        apply_event(&mut jobs, &mut flows, &avg_rate, topo, t, &ev.event);
    }

    let explained = jobs
        .iter()
        .filter_map(|(&job, st)| {
            let (launch, completion) = (st.launch?, st.completion?);
            let mut blame: Vec<BlameEntry> = st
                .blame
                .iter()
                .map(|((link, j), &wait_ns)| BlameEntry {
                    link: link.clone(),
                    job: *j,
                    wait_ns,
                })
                .collect();
            blame.sort_by(|a, b| {
                b.wait_ns
                    .cmp(&a.wait_ns)
                    .then_with(|| a.link.cmp(&b.link))
                    .then_with(|| a.job.cmp(&b.job))
            });
            Some(JobExplanation {
                job,
                launch_ns: launch,
                completion_ns: completion,
                jct_ns: completion - launch,
                breakdown: st.breakdown,
                blame,
                critical_path: critical_path(st, launch, completion),
            })
        })
        .collect();
    AnalysisReport { jobs: explained }
}

/// Classify `[start, end)` for every live job and accumulate.
fn sweep_interval(
    jobs: &mut BTreeMap<u64, JobSt>,
    flows: &BTreeMap<u64, FlowSt>,
    topo: &Topology,
    start: u64,
    end: u64,
) {
    let dt = end - start;

    // Link occupancy for this interval: who is on each shared resource.
    let mut occupancy: BTreeMap<LinkKey, Vec<(u64, u8)>> = BTreeMap::new();
    let mut per_job_flows: BTreeMap<u64, Vec<&FlowSt>> = BTreeMap::new();
    for f in flows.values() {
        per_job_flows.entry(f.job).or_default().push(f);
        for &l in &f.links {
            occupancy.entry(l).or_default().push((f.job, f.band));
        }
    }

    for (&job, st) in jobs.iter_mut() {
        if !st.live_at(start) {
            continue;
        }
        match per_job_flows.get(&job) {
            Some(own) => {
                st.push_run(start, end, Category::Network);
                // Solo share: equal split of each link among the job's
                // *own* flows — self-contention is exclusive service.
                let mut n_self: BTreeMap<LinkKey, u64> = BTreeMap::new();
                for f in own {
                    for &l in &f.links {
                        *n_self.entry(l).or_insert(0) += 1;
                    }
                }
                let mut sum_actual = 0.0;
                let mut sum_solo = 0.0;
                let mut culprits: BTreeSet<(LinkKey, u64)> = BTreeSet::new();
                let mut behind_higher_band = false;
                for f in own {
                    let solo = if f.loopback {
                        topo.loopback().bytes_per_sec()
                    } else {
                        f.links
                            .iter()
                            .map(|&l| l.capacity(topo) / n_self[&l] as f64)
                            .fold(f64::INFINITY, f64::min)
                    };
                    let actual = f.rate.or(f.avg).unwrap_or(solo);
                    sum_actual += actual;
                    sum_solo += solo;
                    for &l in &f.links {
                        for &(other_job, other_band) in &occupancy[&l] {
                            if other_job != job {
                                culprits.insert((l, other_job));
                                if other_band < f.band {
                                    behind_higher_band = true;
                                }
                            }
                        }
                    }
                }
                let exclusive = if culprits.is_empty() || sum_solo <= 0.0 {
                    dt
                } else {
                    let ratio = (sum_actual / sum_solo).clamp(0.0, 1.0);
                    ((dt as f64 * ratio).round() as u64).min(dt)
                };
                let wait = dt - exclusive;
                st.breakdown.net_exclusive_ns += exclusive;
                if behind_higher_band {
                    st.breakdown.band_throttle_ns += wait;
                } else {
                    st.breakdown.net_contention_ns += wait;
                }
                if wait > 0 {
                    // Split the wait evenly over the culprit pairs; the
                    // integer remainder goes to the first pairs in
                    // (link, job) order, keeping blame conservation
                    // exact: Σ blame == contention + throttle.
                    let n = culprits.len() as u64;
                    let (base, rem) = (wait / n, wait % n);
                    for (i, (l, cj)) in culprits.iter().enumerate() {
                        let share = base + u64::from((i as u64) < rem);
                        if share > 0 {
                            *st.blame.entry((l.label(topo), *cj)).or_insert(0) += share;
                        }
                    }
                }
            }
            None if !st.in_barrier.is_empty() => {
                st.breakdown.barrier_wait_ns += dt;
                st.push_run(start, end, Category::BarrierWait);
            }
            None if st.active_tasks > 0 => {
                st.breakdown.compute_ns += dt;
                st.push_run(start, end, Category::Compute);
            }
            None if st.blocked > 0 => {
                st.breakdown.fault_recovery_ns += dt;
                st.push_run(start, end, Category::FaultRecovery);
            }
            None => {
                st.breakdown.other_ns += dt;
                st.push_run(start, end, Category::Other);
            }
        }
    }
}

fn apply_event(
    jobs: &mut BTreeMap<u64, JobSt>,
    flows: &mut BTreeMap<u64, FlowSt>,
    avg_rate: &BTreeMap<u64, f64>,
    topo: &Topology,
    t: u64,
    ev: &SimEvent,
) {
    match *ev {
        SimEvent::JobArrival { job } => {
            jobs.entry(job).or_default().launch = Some(t);
        }
        SimEvent::JobCompletion { job, .. } => {
            jobs.entry(job).or_default().completion = Some(t);
        }
        SimEvent::FlowStart {
            flow,
            tag,
            src,
            dst,
            band,
            ..
        } => {
            let (s, d) = (HostId(src), HostId(dst));
            let loopback = s == d;
            let mut links = Vec::new();
            if !loopback {
                links.push(LinkKey::Egress(src));
                for l in topo.route(s, d).into_iter().flatten() {
                    links.push(LinkKey::Fabric(l.0));
                }
                links.push(LinkKey::Ingress(dst));
            }
            flows.insert(
                flow,
                FlowSt {
                    job: job_of_tag(tag),
                    tag,
                    band,
                    rate: None,
                    avg: avg_rate.get(&flow).copied(),
                    links,
                    loopback,
                },
            );
        }
        SimEvent::FlowFinish {
            flow,
            tag,
            src,
            dst,
            started,
            ..
        } => {
            flows.remove(&flow);
            let kind = if tag & GRAD_TAG_BASE != 0 {
                "grad"
            } else {
                "model"
            };
            if let Some(st) = jobs.get_mut(&job_of_tag(tag)) {
                st.activities.push(Activity {
                    sort_id: (0, flow),
                    label: format!("{kind} {src}->{dst}"),
                    start: started.as_nanos(),
                    finish: t,
                });
            }
        }
        SimEvent::FlowAbort { flow, .. } => {
            flows.remove(&flow);
        }
        SimEvent::FlowShareChange { flow, rate, .. } => {
            if let Some(f) = flows.get_mut(&flow) {
                f.rate = Some(rate);
            }
        }
        SimEvent::PriorityRotation { tag, band, .. } => {
            for f in flows.values_mut() {
                if f.tag == tag {
                    f.band = band;
                }
            }
        }
        SimEvent::TaskStart { job, .. } => {
            jobs.entry(job).or_default().active_tasks += 1;
        }
        SimEvent::TaskFinish {
            task,
            job,
            kind,
            unit,
            started,
            ..
        } => {
            let st = jobs.entry(job).or_default();
            st.active_tasks = st.active_tasks.saturating_sub(1);
            st.activities.push(Activity {
                sort_id: (1, task),
                label: format!("{kind}[{unit}]"),
                start: started.as_nanos(),
                finish: t,
            });
        }
        SimEvent::TaskAbort { job, .. } => {
            let st = jobs.entry(job).or_default();
            st.active_tasks = st.active_tasks.saturating_sub(1);
        }
        SimEvent::BarrierEnter { job, worker, .. } => {
            jobs.entry(job).or_default().in_barrier.insert(worker);
        }
        SimEvent::BarrierExit { job, worker, .. } => {
            jobs.entry(job).or_default().in_barrier.remove(&worker);
        }
        SimEvent::WorkerLost { job, worker } => {
            jobs.entry(job).or_default().in_barrier.remove(&worker);
        }
        SimEvent::RetryAttempt { job, resumed, .. } => {
            let st = jobs.entry(job).or_default();
            if resumed {
                st.blocked = st.blocked.saturating_sub(1);
            } else {
                st.blocked += 1;
            }
        }
        _ => {}
    }
}

/// Backward walk from completion to launch: at each cursor, follow the
/// activity that finished exactly there (latest-started wins, then
/// smallest id); where none did, emit a wait segment labeled by the
/// dominant interval category over the gap.
fn critical_path(st: &JobSt, launch: u64, completion: u64) -> Vec<PathSegment> {
    let acts = &st.activities;
    let mut segs = Vec::new();
    let mut cursor = completion;
    let mut guard = acts.len() * 2 + 64;
    while cursor > launch && guard > 0 {
        guard -= 1;
        let mut candidates: Vec<&Activity> = acts
            .iter()
            .filter(|a| a.finish == cursor && a.start < cursor)
            .collect();
        candidates.sort_by(|a, b| {
            b.start
                .cmp(&a.start)
                .then_with(|| a.sort_id.cmp(&b.sort_id))
        });
        match candidates.first() {
            Some(a) => {
                let start = a.start.max(launch);
                segs.push(PathSegment {
                    label: a.label.clone(),
                    start_ns: start,
                    end_ns: cursor,
                });
                cursor = start;
            }
            None => {
                let prev = acts
                    .iter()
                    .map(|a| a.finish)
                    .filter(|&f| f < cursor)
                    .max()
                    .map_or(launch, |f| f.max(launch));
                segs.push(PathSegment {
                    label: format!("wait:{}", dominant_category(&st.runs, prev, cursor)),
                    start_ns: prev,
                    end_ns: cursor,
                });
                cursor = prev;
            }
        }
    }
    segs.reverse();
    segs
}

/// The category covering the most time in `[a, b)`, by the classified
/// runs; "idle" when nothing overlaps.
fn dominant_category(runs: &[(u64, u64, Category)], a: u64, b: u64) -> &'static str {
    let mut totals: BTreeMap<Category, u64> = BTreeMap::new();
    for &(s, e, cat) in runs {
        let overlap = e.min(b).saturating_sub(s.max(a));
        if overlap > 0 {
            *totals.entry(cat).or_insert(0) += overlap;
        }
    }
    totals
        .into_iter()
        .max_by(|x, y| x.1.cmp(&y.1).then_with(|| y.0.cmp(&x.0)))
        .map_or("idle", |(cat, _)| cat.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use tl_net::TopologyBuilder;

    fn at(ns: u64, event: SimEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_nanos(ns),
            event,
        }
    }

    fn topo(hosts: usize) -> Topology {
        TopologyBuilder::single_switch(hosts).build()
    }

    #[test]
    fn pure_compute_job_is_all_compute() {
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::TaskStart {
                    task: 1,
                    job: 0,
                    host: 0,
                    kind: "worker_step",
                    unit: 2,
                },
            ),
            at(
                5_000_000_000,
                SimEvent::TaskFinish {
                    task: 1,
                    job: 0,
                    host: 0,
                    kind: "worker_step",
                    unit: 2,
                    started: SimTime::ZERO,
                },
            ),
            at(
                5_000_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let report = explain(&events, &topo(2));
        let j = report.job(0).expect("job explained");
        assert_eq!(j.jct_ns, 5_000_000_000);
        assert_eq!(j.breakdown.compute_ns, 5_000_000_000);
        assert!(j.conserves());
        report.check_conservation().unwrap();
        assert_eq!(j.critical_path.len(), 1);
        assert_eq!(j.critical_path[0].label, "worker_step[2]");
        assert!(j.blame.is_empty());
    }

    #[test]
    fn shared_nic_contention_is_blamed_on_the_competitor() {
        // Both jobs send from host 0 (10 Gbps NIC = 1.25e9 B/s); each
        // gets half, so half of job 0's network time is contention
        // blamed on job 1 at host0.egress.
        let cap = 1.25e9;
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::FlowStart {
                    flow: 10,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: cap,
                    band: 1,
                },
            ),
            at(
                0,
                SimEvent::FlowStart {
                    flow: 11,
                    tag: 1,
                    src: 0,
                    dst: 2,
                    bytes: cap,
                    band: 1,
                },
            ),
            at(
                0,
                SimEvent::FlowShareChange {
                    flow: 10,
                    tag: 0,
                    rate: cap / 2.0,
                    cause: tl_telemetry::ShareChangeCause::NewCompetitor,
                },
            ),
            at(
                2_000_000_000,
                SimEvent::FlowFinish {
                    flow: 10,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: cap,
                    started: SimTime::ZERO,
                },
            ),
            at(
                2_000_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let report = explain(&events, &topo(3));
        let j = report.job(0).expect("job explained");
        assert!(j.conserves());
        assert_eq!(j.breakdown.net_exclusive_ns, 1_000_000_000);
        assert_eq!(j.breakdown.net_contention_ns, 1_000_000_000);
        assert_eq!(j.breakdown.band_throttle_ns, 0);
        // Both shared links (host0.egress only — different dst hosts)
        // blame job 1 for the full second of wait.
        let total_blame: u64 = j.blame.iter().map(|b| b.wait_ns).sum();
        assert_eq!(total_blame, j.breakdown.wait_ns());
        assert!(j.blame.iter().all(|b| b.job == 1));
        assert!(j.blame.iter().any(|b| b.link == "host0.egress"));
    }

    #[test]
    fn higher_band_competitor_classifies_as_throttle() {
        let cap = 1.25e9;
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::FlowStart {
                    flow: 10,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: cap,
                    band: 2,
                },
            ),
            at(
                0,
                SimEvent::FlowStart {
                    flow: 11,
                    tag: 1,
                    src: 0,
                    dst: 2,
                    bytes: cap,
                    band: 0,
                },
            ),
            at(
                0,
                SimEvent::FlowShareChange {
                    flow: 10,
                    tag: 0,
                    rate: cap / 4.0,
                    cause: tl_telemetry::ShareChangeCause::NewCompetitor,
                },
            ),
            at(
                4_000_000_000,
                SimEvent::FlowFinish {
                    flow: 10,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: cap,
                    started: SimTime::ZERO,
                },
            ),
            at(
                4_000_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let report = explain(&events, &topo(3));
        let j = report.job(0).expect("job explained");
        assert!(j.conserves());
        assert_eq!(j.breakdown.band_throttle_ns, 3_000_000_000);
        assert_eq!(j.breakdown.net_contention_ns, 0);
    }

    #[test]
    fn barrier_and_fault_intervals_classify() {
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::BarrierEnter {
                    job: 0,
                    worker: 0,
                    barrier: 0,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::BarrierExit {
                    job: 0,
                    worker: 0,
                    barrier: 0,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::RetryAttempt {
                    job: 0,
                    work: "flow",
                    attempt: 1,
                    resumed: false,
                },
            ),
            at(
                3_000_000_000,
                SimEvent::RetryAttempt {
                    job: 0,
                    work: "flow",
                    attempt: 2,
                    resumed: true,
                },
            ),
            at(
                3_500_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let report = explain(&events, &topo(2));
        let j = report.job(0).expect("job explained");
        assert!(j.conserves());
        assert_eq!(j.breakdown.barrier_wait_ns, 1_000_000_000);
        assert_eq!(j.breakdown.fault_recovery_ns, 2_000_000_000);
        assert_eq!(j.breakdown.other_ns, 500_000_000);
        // No activities at all: the critical path is one wait segment
        // labeled by the dominant category (fault recovery, 2s of 3.5s).
        assert_eq!(j.critical_path.len(), 1);
        assert_eq!(j.critical_path[0].label, "wait:fault_recovery");
    }

    #[test]
    fn critical_path_chains_through_flow_then_task() {
        // model update (0..1s) -> worker step (1..3s) -> grad (3..4s).
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::FlowStart {
                    flow: 1,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: 1e9,
                    band: 1,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::FlowFinish {
                    flow: 1,
                    tag: 0,
                    src: 0,
                    dst: 1,
                    bytes: 1e9,
                    started: SimTime::ZERO,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::TaskStart {
                    task: 7,
                    job: 0,
                    host: 1,
                    kind: "worker_step",
                    unit: 0,
                },
            ),
            at(
                3_000_000_000,
                SimEvent::TaskFinish {
                    task: 7,
                    job: 0,
                    host: 1,
                    kind: "worker_step",
                    unit: 0,
                    started: SimTime::from_nanos(1_000_000_000),
                },
            ),
            at(
                3_000_000_000,
                SimEvent::FlowStart {
                    flow: 2,
                    tag: GRAD_TAG_BASE,
                    src: 1,
                    dst: 0,
                    bytes: 1e9,
                    band: 1,
                },
            ),
            at(
                4_000_000_000,
                SimEvent::FlowFinish {
                    flow: 2,
                    tag: GRAD_TAG_BASE,
                    src: 1,
                    dst: 0,
                    bytes: 1e9,
                    started: SimTime::from_nanos(3_000_000_000),
                },
            ),
            at(
                4_000_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let report = explain(&events, &topo(2));
        let j = report.job(0).expect("job explained");
        assert!(j.conserves());
        let labels: Vec<&str> = j.critical_path.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["model 0->1", "worker_step[0]", "grad 1->0"]);
        assert_eq!(j.critical_path[0].start_ns, 0);
        assert_eq!(j.critical_path[2].end_ns, 4_000_000_000);
        // Solo flows: all network time is exclusive.
        assert_eq!(j.breakdown.net_exclusive_ns, 2_000_000_000);
        assert_eq!(j.breakdown.wait_ns(), 0);
    }

    #[test]
    fn explanation_json_is_deterministic() {
        let events = vec![
            at(0, SimEvent::JobArrival { job: 0 }),
            at(
                0,
                SimEvent::TaskStart {
                    task: 1,
                    job: 0,
                    host: 0,
                    kind: "worker_step",
                    unit: 0,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::TaskFinish {
                    task: 1,
                    job: 0,
                    host: 0,
                    kind: "worker_step",
                    unit: 0,
                    started: SimTime::ZERO,
                },
            ),
            at(
                1_000_000_000,
                SimEvent::JobCompletion {
                    job: 0,
                    iterations: 1,
                },
            ),
        ];
        let t = topo(1);
        let a = explain(&events, &t).to_json();
        let b = explain(&events, &t).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"compute_ns\": 1000000000"));
    }
}
