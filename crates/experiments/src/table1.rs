//! Table I — the eight PS placements.

use crate::report::Table;
use tl_cluster::{table1_group_sizes, table1_placement, Table1Index};

/// Reproduction of Table I.
#[derive(Debug)]
pub struct Table1 {
    /// `(index, group sizes, hosts with contending PSes)` per placement.
    pub rows: Vec<(u8, Vec<u32>, usize)>,
}

/// Generate Table I for the paper's 21 jobs / 21 hosts.
pub fn run() -> Table1 {
    let rows = Table1Index::all()
        .into_iter()
        .map(|idx| {
            let groups = table1_group_sizes(idx, 21);
            let placement = table1_placement(idx, 21, 21);
            (idx.0, groups, placement.hosts_with_contending_ps().len())
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table I: PS placements (21 concurrent jobs, 21 hosts)",
            &["Index", "PS placement", "contended hosts"],
        );
        for (idx, groups, contended) in &self.rows {
            let placement = if groups.len() == 21 {
                "1, ..., 1 (all ones)".to_string()
            } else {
                groups
                    .iter()
                    .map(|g| g.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            t.push_row(vec![format!("#{idx}"), placement, contended.to_string()]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table() {
        let t = run();
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.rows[0].1, vec![21]);
        assert_eq!(t.rows[1].1, vec![5, 16]);
        assert_eq!(t.rows[7].1, vec![1; 21]);
        // Contended-host counts: #1 has 1, #7 has 7, #8 has none.
        assert_eq!(t.rows[0].2, 1);
        assert_eq!(t.rows[6].2, 7);
        assert_eq!(t.rows[7].2, 0);
    }

    #[test]
    fn renders_paper_shorthand() {
        let s = run().table().render();
        assert!(s.contains("5, 16"));
        assert!(s.contains("1, ..., 1 (all ones)"));
    }
}
