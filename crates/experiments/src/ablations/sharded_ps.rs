//! Sharded parameter servers — the paper's "more general case".
//!
//! §III: "In a more general case where one DL job has multiple PSes, each
//! PS communicates with remote workers in a similar way." Sharding splits
//! every job's update bytes across several hosts, which both multiplies the
//! available PS egress and *spreads* the colocation: with two shards per
//! job on hosts {0, 1}, each host carries half the burst of placement #1.
//! TensorLights applies unchanged (each contended host runs its own tc).

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_net::HostId;
use tl_workloads::GridSearchConfig;

/// One (shards, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ShardedRow {
    /// PS shards per job.
    pub shards: u32,
    /// Policy label.
    pub policy: &'static str,
    /// Mean JCT (s).
    pub mean_jct: f64,
}

/// The study result.
#[derive(Debug, Serialize)]
pub struct ShardedStudy {
    /// All cells, shards-major.
    pub rows: Vec<ShardedRow>,
}

/// Run the 21-job grid search with every job's PS split into `1..=max`
/// shards, colocated on hosts `0..shards` (the generalization of
/// placement #1), under FIFO and TLs-One.
pub fn run(cfg: &ExperimentConfig, shard_counts: &[u32]) -> ShardedStudy {
    let mut tasks = Vec::new();
    for &sc in shard_counts {
        for p in [PolicyKind::Fifo, PolicyKind::TlsOne] {
            tasks.push((sc, p));
        }
    }
    let rows = parallel_map(tasks, |(shards, policy)| {
        assert!(shards >= 1, "need at least one shard");
        let placement = table1_placement(Table1Index(1), 21, 21);
        let mut setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        for s in &mut setups {
            // Shard k of every job lives on host k; all hosts 0..shards are
            // worker-free in placement #1's shape only for host 0, so keep
            // worker overlap as-is — shards and workers may share hosts,
            // as in real clusters.
            let extra: Vec<HostId> = (1..shards).map(HostId).collect();
            s.placement = s.placement.clone().with_extra_ps(extra);
        }
        let mut p = policy.build(cfg);
        let out = Simulation::new(cfg.sim_config())
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        ShardedRow {
            shards,
            policy: policy.label(),
            mean_jct: out.mean_jct_secs(),
        }
    });
    ShardedStudy { rows }
}

impl ShardedStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: sharded parameter servers (colocated shards, 21 jobs)",
            &["Shards/job", "Policy", "mean JCT (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.shards.to_string(),
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
            ]);
        }
        t
    }

    /// Mean JCT of a cell.
    pub fn jct(&self, shards: u32, policy: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.shards == shards && r.policy == policy)
            .unwrap_or_else(|| panic!("missing cell {shards}/{policy}"))
            .mean_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_spreads_contention_and_tls_still_helps() {
        let cfg = ExperimentConfig::quick();
        let s = run(&cfg, &[1, 4]);
        // Four shards quarter each host's burst: FIFO improves a lot.
        assert!(
            s.jct(4, "FIFO") < s.jct(1, "FIFO") * 0.75,
            "sharding helps FIFO: {} vs {}",
            s.jct(4, "FIFO"),
            s.jct(1, "FIFO")
        );
        // TLs still beats FIFO while shards remain colocated.
        assert!(s.jct(1, "TLs-One") < s.jct(1, "FIFO"));
        assert!(s.jct(4, "TLs-One") <= s.jct(4, "FIFO") * 1.02);
        assert!(s.table().render().contains("Shards/job"));
    }
}
