//! Model-size sweep: TLs benefit vs update size.
//!
//! The paper's §V closes with: recent trends (more workers, accelerators,
//! larger exchanges per iteration) "would lead to even heavier contention".
//! This ablation scales the model-update size from well below to well above
//! the ResNet-32 workload and measures FIFO's degradation and TensorLights'
//! advantage.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::parallel_map;
use serde::Serialize;
use tensorlights::{FifoPolicy, JobOrdering, PriorityPolicy, TlsOne};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::{ModelSpec, Simulation};
use tl_workloads::GridSearchConfig;

/// One model-size data point.
#[derive(Debug, Clone, Serialize)]
pub struct ModelSizeRow {
    /// Update size in megabytes.
    pub update_mb: u64,
    /// FIFO mean JCT (s).
    pub fifo_jct: f64,
    /// TLs-One mean JCT normalized over FIFO.
    pub tls_one_norm: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct ModelSizeAblation {
    /// One row per size, ascending.
    pub rows: Vec<ModelSizeRow>,
}

/// Sweep synthetic update sizes at placement #1.
pub fn run(cfg: &ExperimentConfig, sizes_mb: &[u64]) -> ModelSizeAblation {
    let rows = parallel_map(sizes_mb.to_vec(), |mb| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
        wl.model = ModelSpec::synthetic_mb(mb);
        let mut fifo = FifoPolicy;
        let base = Simulation::new(cfg.sim_config())
            .jobs(wl.build(&placement))
            .policy_ref(&mut fifo)
            .run();
        let mut one: Box<dyn PriorityPolicy + Send> =
            Box::new(TlsOne::new(JobOrdering::Random { seed: cfg.seed }).with_bands(cfg.num_bands));
        let tls = Simulation::new(cfg.sim_config())
            .jobs(wl.build(&placement))
            .policy_ref(one.as_mut())
            .run();
        assert!(base.all_complete() && tls.all_complete());
        ModelSizeRow {
            update_mb: mb,
            fifo_jct: base.mean_jct_secs(),
            tls_one_norm: tls.mean_jct_secs() / base.mean_jct_secs(),
        }
    });
    ModelSizeAblation { rows }
}

impl ModelSizeAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: model update size (placement #1)",
            &["Update (MB)", "FIFO JCT (s)", "TLs-One (norm.)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.update_mb.to_string(),
                format!("{:.1}", r.fifo_jct),
                format!("{:.3}", r.tls_one_norm),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_models_contend_more() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg, &[1, 8]);
        assert!(a.rows[1].fifo_jct > a.rows[0].fifo_jct, "bigger = slower");
        assert!(
            a.rows[1].tls_one_norm < a.rows[0].tls_one_norm,
            "bigger = more TLs benefit: {:.3} vs {:.3}",
            a.rows[1].tls_one_norm,
            a.rows[0].tls_one_norm
        );
        assert!(a.table().render().contains("Update (MB)"));
    }
}
