//! NIC utilization over time: the burstiness mechanism, made visible.
//!
//! The paper's Observation #1 attributes FIFO's losses to *bursty* model
//! updates: "the PS will wait for the gradient updates from all workers and
//! then send out model updates to all workers at once", so overlapping
//! bursts produce heavy delays while the link idles in between. This
//! extension samples the PS-host egress utilization over time at placement
//! #1: under FIFO the phase-locked jobs drive the NIC in on/off bursts;
//! under TLs-One the staircased priorities pipeline the bursts into a
//! near-steady stream.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use simcore::{SampleSet, SimDuration};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One policy's egress-utilization time series at the PS host.
#[derive(Debug, Serialize)]
pub struct TimelineSide {
    /// Policy label.
    pub label: &'static str,
    /// `(seconds, PS-host egress utilization)` samples.
    pub series: Vec<(f64, f64)>,
    /// Mean utilization while any job runs.
    pub mean: f64,
    /// Coefficient of variation (stddev/mean) — burstiness.
    pub burstiness: f64,
}

/// The timeline comparison.
#[derive(Debug, Serialize)]
pub struct TimelineStudy {
    /// FIFO and TLs-One sides.
    pub sides: Vec<TimelineSide>,
}

/// Sample the PS-host (host 0) egress under FIFO and TLs-One.
pub fn run(cfg: &ExperimentConfig, sample_ms: u64) -> TimelineStudy {
    let sides = parallel_map(vec![PolicyKind::Fifo, PolicyKind::TlsOne], |policy| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        let mut sim_cfg = cfg.sim_config();
        sim_cfg.sample_interval = Some(SimDuration::from_millis(sample_ms));
        let mut p = policy.build(cfg);
        let out = Simulation::new(sim_cfg)
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        let series: Vec<(f64, f64)> = out
            .samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.per_host[0].net_out))
            .collect();
        let mut stats = SampleSet::new();
        for &(_, u) in &series {
            stats.push(u);
        }
        let mean = stats.mean();
        TimelineSide {
            label: policy.label(),
            burstiness: if mean > 0.0 {
                stats.variance().sqrt() / mean
            } else {
                0.0
            },
            mean,
            series,
        }
    });
    TimelineStudy { sides }
}

impl TimelineStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: PS-host egress utilization over time (placement #1)",
            &["Policy", "mean utilization", "burstiness (CV)"],
        );
        for s in &self.sides {
            t.push_row(vec![
                s.label.to_string(),
                format!("{:.3}", s.mean),
                format!("{:.3}", s.burstiness),
            ]);
        }
        t
    }

    /// ASCII strip of the utilization level over time for each policy
    /// (`.:-=#` from idle to saturated), clipped to the first `cols`
    /// samples.
    pub fn ascii(&self, cols: usize) -> String {
        let glyph = |u: f64| match (u * 5.0) as u32 {
            0 => '.',
            1 => ':',
            2 => '-',
            3 => '=',
            _ => '#',
        };
        let mut out = String::from("PS egress utilization over time (. idle -> # saturated):\n");
        for s in &self.sides {
            let strip: String = s.series.iter().take(cols).map(|&(_, u)| glyph(u)).collect();
            out.push_str(&format!("  {:8} |{strip}|\n", s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_burstier_tls_is_fuller() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 40;
        let s = run(&cfg, 300);
        let fifo = &s.sides[0];
        let tls = &s.sides[1];
        assert!(fifo.series.len() > 10);
        assert!(
            tls.mean > fifo.mean,
            "TLs keeps the NIC busier: {:.3} vs {:.3}",
            tls.mean,
            fifo.mean
        );
        assert!(
            fifo.burstiness > tls.burstiness,
            "FIFO is burstier: {:.3} vs {:.3}",
            fifo.burstiness,
            tls.burstiness
        );
        let a = s.ascii(60);
        assert!(a.contains("FIFO") && a.contains("TLs-One"));
        assert!(s.table().render().contains("burstiness"));
    }
}
