//! Ablations and extensions beyond the paper's headline experiments.
//!
//! Each module isolates one design choice DESIGN.md calls out:
//!
//! * [`bands`] — how many tc priority bands are enough (the paper is
//!   limited to six)?
//! * [`rotation`] — the TLs-RR interval `T`: fairness vs efficiency.
//! * [`jitter`] — sensitivity to the TCP-unfairness intensity that causes
//!   stragglers in the first place.
//! * [`ordering`] — priority orderings on heterogeneous model mixes
//!   (the paper's smallest-update-first suggestion vs random).
//! * [`model_size`] — TLs benefit as a function of update size.
//! * [`rate_control`] — the paper's §VII alternative: static sender rate
//!   allocation instead of work-conserving priority.
//! * [`async_mode`] — synchronous vs asynchronous training under
//!   contention (no barrier, no straggler amplification).
//! * [`ps_aware`] — the paper's §VII alternative: a PS-aware cluster
//!   scheduler that avoids colocation, vs TensorLights on a bad placement.
//! * [`qdisc`] — chunk-level comparison of pfifo_fast / prio / per-job DRR.
//! * [`churn`] — open-loop Poisson job arrivals: TLs reconfigures on every
//!   arrival/departure and still helps.
//! * [`timeline`] — PS-host egress utilization over time: FIFO's bursty
//!   on/off pattern vs TLs-One's pipelined steady stream.
//! * [`fabric`] — oversubscribed switch cores: the contention end-host
//!   scheduling cannot fix, bounding where TensorLights applies.
//! * [`fairness`] — progress spread over time: TLs-RR's rotation bounds
//!   the fastest/slowest gap that TLs-One lets grow.
//! * [`sharded_ps`] — the paper's "more general case where one DL job has
//!   multiple PSes": sharding spreads bursts, TensorLights still applies.
//! * [`slow_host`] — compute stragglers from a degraded host: the failure
//!   mode NIC priorities cannot fix (negative control).

pub mod async_mode;
pub mod bands;
pub mod churn;
pub mod fabric;
pub mod fairness;
pub mod jitter;
pub mod model_size;
pub mod ordering;
pub mod ps_aware;
pub mod qdisc;
pub mod rate_control;
pub mod rotation;
pub mod sharded_ps;
pub mod slow_host;
pub mod timeline;
