//! TLs-RR rotation-interval ablation: fairness vs efficiency.
//!
//! The paper argues "an interval T in the scale of seconds to minutes is
//! sufficient". Rotating very fast approaches per-iteration fair sharing
//! (less straggler mitigation per interval but very even progress);
//! rotating very slowly approaches TLs-One (strict priority, uneven
//! progress). The fairness metric is the spread of job completion times.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::parallel_map;
use serde::Serialize;
use simcore::SimDuration;
use tensorlights::{JobOrdering, TlsRr};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One rotation-interval data point.
#[derive(Debug, Clone, Serialize)]
pub struct RotationRow {
    /// Rotation interval in seconds.
    pub interval_secs: f64,
    /// Mean JCT (seconds) — efficiency.
    pub mean_jct: f64,
    /// Max − min JCT across jobs (seconds) — unfairness.
    pub jct_spread: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct RotationAblation {
    /// One row per interval, ascending.
    pub rows: Vec<RotationRow>,
}

/// Run TLs-RR at placement #1 with each interval.
pub fn run(cfg: &ExperimentConfig, intervals_secs: &[f64]) -> RotationAblation {
    let rows = parallel_map(intervals_secs.to_vec(), |t| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        let mut policy = TlsRr::new(JobOrdering::Random { seed: cfg.seed })
            .with_bands(cfg.num_bands)
            .with_interval(SimDuration::from_secs_f64(t));
        let out = Simulation::new(cfg.sim_config())
            .jobs(setups)
            .policy_ref(&mut policy)
            .run();
        assert!(out.all_complete());
        let jcts: Vec<f64> = out.jobs.iter().map(|j| j.jct_secs().unwrap()).collect();
        let min = jcts.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let max = jcts.iter().fold(0.0f64, |a, &b| a.max(b));
        RotationRow {
            interval_secs: t,
            mean_jct: out.mean_jct_secs(),
            jct_spread: max - min,
        }
    });
    RotationAblation { rows }
}

impl RotationAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: TLs-RR rotation interval (placement #1)",
            &["T (s)", "mean JCT (s)", "JCT spread (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{:.1}", r.interval_secs),
                format!("{:.1}", r.mean_jct),
                format!("{:.1}", r.jct_spread),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_rotation_is_fairer() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 40;
        let a = run(&cfg, &[0.5, 1e6]); // very fast vs effectively never
        assert_eq!(a.rows.len(), 2);
        assert!(
            a.rows[0].jct_spread < a.rows[1].jct_spread,
            "fast rotation spread {:.2}s should beat none {:.2}s",
            a.rows[0].jct_spread,
            a.rows[1].jct_spread
        );
        assert!(a.table().render().contains("T (s)"));
    }
}
