//! Compute stragglers: the failure mode TensorLights does *not* fix.
//!
//! TensorLights targets network-induced stragglers — "a worker may become a
//! straggler if its model update is delayed as a result of traffic
//! contention at the PS side". Stragglers caused by *slow compute* (an
//! overloaded or degraded host) hit the same barrier but no NIC priority
//! can help. This negative control halves one worker host's cores at the
//! uncontended placement #8 and confirms that (a) every job slows down (it
//! has a worker there), and (b) TLs-One buys back ~nothing — a useful
//! boundary on the paper's claims.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use tl_cluster::{table1_placement, HostSpec, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One (scenario, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct SlowHostRow {
    /// "uniform" or "one slow host".
    pub scenario: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Mean JCT (s).
    pub mean_jct: f64,
    /// Mean per-barrier wait variance.
    pub wait_variance: f64,
}

/// The comparison.
#[derive(Debug, Serialize)]
pub struct SlowHostStudy {
    /// All four cells.
    pub rows: Vec<SlowHostRow>,
}

/// Run placement #8 with and without a half-speed host, under FIFO and
/// TLs-One.
pub fn run(cfg: &ExperimentConfig) -> SlowHostStudy {
    let mut tasks = Vec::new();
    for scenario in ["uniform", "one slow host"] {
        for p in [PolicyKind::Fifo, PolicyKind::TlsOne] {
            tasks.push((scenario, p));
        }
    }
    let rows = parallel_map(tasks, |(scenario, policy)| {
        let placement = table1_placement(Table1Index(8), 21, 21);
        let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        let mut sim_cfg = cfg.sim_config();
        if scenario == "one slow host" {
            // Host 5 (a worker host for most jobs) loses half its cores.
            sim_cfg
                .host_spec_overrides
                .push((5, HostSpec::with_cores(sim_cfg.host_spec.cores / 2.0)));
        }
        let mut p = policy.build(cfg);
        let out = Simulation::new(sim_cfg)
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        let mut vars = simcore::SampleSet::new();
        for j in &out.jobs {
            vars.extend_from(&j.barrier_vars);
        }
        SlowHostRow {
            scenario,
            policy: policy.label(),
            mean_jct: out.mean_jct_secs(),
            wait_variance: vars.mean(),
        }
    });
    SlowHostStudy { rows }
}

impl SlowHostStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: compute stragglers (placement #8, negative control)",
            &["Scenario", "Policy", "mean JCT (s)", "wait variance"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.scenario.to_string(),
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
                format!("{:.5}", r.wait_variance),
            ]);
        }
        t
    }

    /// Cell lookup.
    pub fn jct(&self, scenario: &str, policy: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.policy == policy)
            .unwrap_or_else(|| panic!("missing cell {scenario}/{policy}"))
            .mean_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_priorities_cannot_fix_compute_stragglers() {
        let cfg = ExperimentConfig::quick();
        let s = run(&cfg);
        // The slow host drags every job (each has a worker there).
        assert!(
            s.jct("one slow host", "FIFO") > s.jct("uniform", "FIFO") * 1.3,
            "slow host hurts: {} vs {}",
            s.jct("one slow host", "FIFO"),
            s.jct("uniform", "FIFO")
        );
        // And TLs-One buys back essentially nothing there.
        let ratio = s.jct("one slow host", "TLs-One") / s.jct("one slow host", "FIFO");
        assert!(
            (ratio - 1.0).abs() < 0.03,
            "TLs cannot fix compute stragglers: {ratio}"
        );
        // The slow host also raises barrier-wait variance (stragglers).
        let uniform_var = s.rows[0].wait_variance;
        let slow_var = s.rows[2].wait_variance;
        assert!(slow_var > uniform_var, "{slow_var} vs {uniform_var}");
        assert!(s.table().render().contains("negative control"));
    }
}
