//! Synchronous vs asynchronous training under contention.
//!
//! The paper focuses on synchronous training because "any one straggling
//! worker will delay the whole iteration". Asynchronous training has no
//! barrier, so stragglers do not amplify — this ablation verifies that the
//! simulator reproduces that structural difference: TensorLights' advantage
//! should be concentrated in the synchronous mode.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::{Simulation, TrainingMode};
use tl_workloads::GridSearchConfig;

/// One (mode, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct AsyncRow {
    /// "sync" or "async".
    pub mode: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Mean JCT (s).
    pub mean_jct: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct AsyncAblation {
    /// All four cells.
    pub rows: Vec<AsyncRow>,
    /// TLs-One improvement over FIFO in sync mode.
    pub sync_improvement: f64,
    /// TLs-One improvement over FIFO in async mode.
    pub async_improvement: f64,
}

/// Run the 2×2 (mode × policy) grid at placement #1.
pub fn run(cfg: &ExperimentConfig) -> AsyncAblation {
    let cells = vec![
        (TrainingMode::Synchronous, PolicyKind::Fifo),
        (TrainingMode::Synchronous, PolicyKind::TlsOne),
        (TrainingMode::Asynchronous, PolicyKind::Fifo),
        (TrainingMode::Asynchronous, PolicyKind::TlsOne),
    ];
    let rows = parallel_map(cells, |(mode, policy)| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
        wl.mode = mode;
        let mut p = policy.build(cfg);
        let out = Simulation::new(cfg.sim_config())
            .jobs(wl.build(&placement))
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        AsyncRow {
            mode: match mode {
                TrainingMode::Synchronous => "sync",
                TrainingMode::Asynchronous => "async",
            },
            policy: policy.label(),
            mean_jct: out.mean_jct_secs(),
        }
    });
    AsyncAblation {
        sync_improvement: 1.0 - rows[1].mean_jct / rows[0].mean_jct,
        async_improvement: 1.0 - rows[3].mean_jct / rows[2].mean_jct,
        rows,
    }
}

impl AsyncAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: training mode × policy (placement #1)",
            &["Mode", "Policy", "mean JCT (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.mode.to_string(),
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_amplifies_tls_benefit() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg);
        assert_eq!(a.rows.len(), 4);
        assert!(a.sync_improvement > 0.05, "sync: {}", a.sync_improvement);
        assert!(
            a.sync_improvement > a.async_improvement,
            "sync gain {:.3} should exceed async gain {:.3}",
            a.sync_improvement,
            a.async_improvement
        );
        assert!(a.table().render().contains("async"));
    }
}
