//! TCP-unfairness (jitter) sensitivity.
//!
//! The straggler mechanism the paper describes requires *unequal* progress
//! among a burst's flows. This ablation sweeps the per-flow weight sigma:
//! with zero jitter all of a job's updates finish simultaneously and the
//! within-job variance vanishes; more jitter means more stragglers, and
//! TensorLights' relative advantage should persist across the range.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, run_table1, PolicyKind};
use serde::Serialize;
use simcore::SampleSet;
use tl_cluster::Table1Index;

/// One jitter data point.
#[derive(Debug, Clone, Serialize)]
pub struct JitterRow {
    /// Lognormal sigma of per-flow weights.
    pub sigma: f64,
    /// FIFO mean JCT (s).
    pub fifo_jct: f64,
    /// TLs-One mean JCT normalized over FIFO.
    pub tls_one_norm: f64,
    /// FIFO average per-barrier wait variance (straggler intensity).
    pub fifo_wait_variance: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct JitterAblation {
    /// One row per sigma, ascending.
    pub rows: Vec<JitterRow>,
}

/// Sweep the jitter sigma at placement #1.
pub fn run(cfg: &ExperimentConfig, sigmas: &[f64]) -> JitterAblation {
    let rows = parallel_map(sigmas.to_vec(), |sigma| {
        let mut c = cfg.clone();
        c.net_sigma = sigma;
        let fifo = run_table1(&c, Table1Index(1), PolicyKind::Fifo);
        let one = run_table1(&c, Table1Index(1), PolicyKind::TlsOne);
        assert!(fifo.all_complete() && one.all_complete());
        let mut vars = SampleSet::new();
        for j in &fifo.jobs {
            vars.extend_from(&j.barrier_vars);
        }
        JitterRow {
            sigma,
            fifo_jct: fifo.mean_jct_secs(),
            tls_one_norm: one.mean_jct_secs() / fifo.mean_jct_secs(),
            fifo_wait_variance: vars.mean(),
        }
    });
    JitterAblation { rows }
}

impl JitterAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: TCP-unfairness sigma (placement #1)",
            &["sigma", "FIFO JCT (s)", "TLs-One (norm.)", "FIFO wait var"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{:.2}", r.sigma),
                format!("{:.1}", r.fifo_jct),
                format!("{:.3}", r.tls_one_norm),
                format!("{:.5}", r.fifo_wait_variance),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_drives_straggler_variance() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg, &[0.0, 0.5]);
        assert!(
            a.rows[1].fifo_wait_variance > a.rows[0].fifo_wait_variance * 2.0,
            "jitter raises variance: {} vs {}",
            a.rows[1].fifo_wait_variance,
            a.rows[0].fifo_wait_variance
        );
        // TLs still helps at both extremes (burst alignment exists with or
        // without jitter).
        for r in &a.rows {
            assert!(
                r.tls_one_norm < 1.0,
                "sigma {}: {}",
                r.sigma,
                r.tls_one_norm
            );
        }
        assert!(a.table().render().contains("sigma"));
    }
}
