//! Priority-ordering ablation on heterogeneous model mixes.
//!
//! The paper: "in other cases with concurrent DL jobs of various sizes of
//! model update, a higher priority can be assigned to a job with a smaller
//! model update, so as to avoid head-of-line blocking from a job with
//! larger model update." We mix ResNet-32-sized jobs with AlexNet-sized
//! jobs (two orders of magnitude more bytes per update) on one PS host and
//! compare orderings.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::parallel_map;
use serde::Serialize;
use tensorlights::{JobOrdering, TlsOne};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::{ModelSpec, Simulation};
use tl_workloads::{heterogeneous_mix, GridSearchConfig};

/// One ordering's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct OrderingRow {
    /// Ordering label.
    pub label: String,
    /// Mean JCT over all jobs (s).
    pub mean_jct: f64,
    /// Mean JCT of the small-model jobs (s) — the head-of-line victims.
    pub small_jobs_jct: f64,
    /// Mean JCT of the large-model jobs (s).
    pub large_jobs_jct: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct OrderingAblation {
    /// One row per ordering.
    pub rows: Vec<OrderingRow>,
}

/// Run the heterogeneous mix under each ordering.
pub fn run(cfg: &ExperimentConfig) -> OrderingAblation {
    let orderings: Vec<(String, JobOrdering)> = vec![
        ("random".into(), JobOrdering::Random { seed: cfg.seed }),
        ("by-arrival".into(), JobOrdering::ByArrival),
        (
            "smallest-update-first".into(),
            JobOrdering::SmallestUpdateFirst,
        ),
    ];
    let models = [ModelSpec::resnet32(), ModelSpec::alexnet()];
    let rows = parallel_map(orderings, |(label, ordering)| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let wl = GridSearchConfig::paper_scaled(cfg.iterations);
        let setups = heterogeneous_mix(&wl, &models, &placement);
        let small: Vec<usize> = (0..21).filter(|i| i % 2 == 0).collect();
        let large: Vec<usize> = (0..21).filter(|i| i % 2 == 1).collect();
        let mut policy = TlsOne::new(ordering).with_bands(cfg.num_bands);
        let out = Simulation::new(cfg.sim_config())
            .jobs(setups)
            .policy_ref(&mut policy)
            .run();
        assert!(out.all_complete());
        let jct = |idx: &[usize]| {
            idx.iter()
                .map(|&i| out.jobs[i].jct_secs().unwrap())
                .sum::<f64>()
                / idx.len() as f64
        };
        OrderingRow {
            label,
            mean_jct: out.mean_jct_secs(),
            small_jobs_jct: jct(&small),
            large_jobs_jct: jct(&large),
        }
    });
    OrderingAblation { rows }
}

impl OrderingAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: priority ordering on a ResNet-32 + AlexNet mix (TLs-One, placement #1)",
            &[
                "Ordering",
                "mean JCT (s)",
                "small jobs (s)",
                "large jobs (s)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.label.clone(),
                format!("{:.1}", r.mean_jct),
                format!("{:.1}", r.small_jobs_jct),
                format!("{:.1}", r.large_jobs_jct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_first_protects_small_jobs() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 20;
        let a = run(&cfg);
        let by = |label: &str| {
            a.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let sf = by("smallest-update-first");
        let rand = by("random");
        assert!(
            sf.small_jobs_jct < rand.small_jobs_jct,
            "small jobs gain from going first: {:.1}s vs {:.1}s",
            sf.small_jobs_jct,
            rand.small_jobs_jct
        );
        assert!(a.table().render().contains("smallest-update-first"));
    }
}
