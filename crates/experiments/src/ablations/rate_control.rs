//! Static sender rate allocation vs work-conserving priority.
//!
//! The paper's §VII discusses orchestrating update traffic with explicit
//! transmission rate control at senders (as in B4/BwE-style systems) and
//! warns that "inaccurate rate allocation would lead to lower network
//! utilization". This ablation implements the static alternative at
//! placement #1 in two flavours:
//!
//! * **accurate**: every model-update flow capped at exactly its fair share
//!   of the PS-host egress (link / 21 jobs / 20 workers). Ideal pacing
//!   removes burst contention, which helps early on — but the caps are not
//!   work-conserving, so once jobs de-phase the reserved-but-idle bandwidth
//!   is wasted; depending on run length it lands near FIFO, and always well
//!   behind work-conserving priority;
//! * **stale**: the same allocator sized for twice the job count (caps at
//!   half the fair share), the realistic failure mode when the job set
//!   changes faster than the allocator — bandwidth idles and everyone
//!   slows down.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{run_table1, PolicyKind};
use serde::Serialize;
use tensorlights::FifoPolicy;
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One policy's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct RateControlRow {
    /// Policy label.
    pub label: String,
    /// Mean JCT (s).
    pub mean_jct: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct RateControlAblation {
    /// FIFO / static rate allocation / TLs-One rows.
    pub rows: Vec<RateControlRow>,
}

/// Run the three alternatives at placement #1.
pub fn run(cfg: &ExperimentConfig) -> RateControlAblation {
    let mut rows = Vec::new();

    let fifo = run_table1(cfg, Table1Index(1), PolicyKind::Fifo);
    rows.push(RateControlRow {
        label: "FIFO".into(),
        mean_jct: fifo.mean_jct_secs(),
    });

    // Static allocation: 21 colocated jobs × 20 simultaneous update flows
    // share the PS egress; each flow gets a fixed 1/(21·20) of the link.
    let placement = table1_placement(Table1Index(1), 21, 21);
    let wl = GridSearchConfig::paper_scaled(cfg.iterations);
    for (label, oversizing) in [
        ("static rates (accurate)", 1.0),
        ("static rates (stale, 2x)", 2.0),
    ] {
        let mut sim_cfg = cfg.sim_config();
        let link = sim_cfg.link.bytes_per_sec();
        sim_cfg.model_update_rate_cap = Some(link / (21.0 * 20.0 * oversizing));
        let mut fifo_policy = FifoPolicy;
        let capped = Simulation::new(sim_cfg)
            .jobs(wl.build(&placement))
            .policy_ref(&mut fifo_policy)
            .run();
        assert!(capped.all_complete());
        rows.push(RateControlRow {
            label: label.into(),
            mean_jct: capped.mean_jct_secs(),
        });
    }

    let one = run_table1(cfg, Table1Index(1), PolicyKind::TlsOne);
    rows.push(RateControlRow {
        label: "TLs-One".into(),
        mean_jct: one.mean_jct_secs(),
    });

    RateControlAblation { rows }
}

impl RateControlAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: §VII alternatives at placement #1 (lower is better)",
            &["Scheme", "mean JCT (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![r.label.clone(), format!("{:.1}", r.mean_jct)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_beats_static_rates() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg);
        let jct = |label: &str| {
            a.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .mean_jct
        };
        // Ideal pacing lands in FIFO's neighbourhood (it trades burst
        // relief against non-work-conservation; the sign flips with run
        // length), never far worse...
        assert!(jct("static rates (accurate)") < jct("FIFO") * 1.15);
        // ...while work-conserving priority clearly wins,
        assert!(jct("TLs-One") < jct("static rates (accurate)") * 0.95);
        // and an allocator that is merely 2x conservative loses badly —
        // the paper's "inaccurate rate allocation" caveat.
        assert!(
            jct("static rates (stale, 2x)") > jct("static rates (accurate)") * 1.2,
            "stale {} vs accurate {}",
            jct("static rates (stale, 2x)"),
            jct("static rates (accurate)")
        );
        assert!(a.table().render().contains("static rates (stale, 2x)"));
    }
}
