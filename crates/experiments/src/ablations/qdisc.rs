//! Chunk-level qdisc comparison: pfifo_fast vs strict priority vs per-job
//! DRR (fair queueing).
//!
//! Separates the two ingredients of TensorLights: *per-job grouping* and
//! *strict priority*. Per-job DRR groups traffic by job but shares the link
//! fairly between jobs — every job still finishes its fan-out late. Strict
//! priority serializes whole jobs, which is what lets winners' workers
//! start computing early.

use crate::report::Table;
use serde::Serialize;
use simcore::SimTime;
use tl_net::{Band, Bandwidth, PacketSim, Qdisc, Transfer};

/// One qdisc's outcome on the contended burst.
#[derive(Debug, Clone, Serialize)]
pub struct QdiscRow {
    /// Discipline label.
    pub label: &'static str,
    /// When each job's last update was delivered (seconds), by job.
    pub job_done: Vec<f64>,
    /// Mean over jobs of the last-delivery time — the expected barrier
    /// release time.
    pub mean_done: f64,
}

/// The comparison result.
#[derive(Debug, Serialize)]
pub struct QdiscStudy {
    /// FIFO / DRR / Prio rows.
    pub rows: Vec<QdiscRow>,
}

/// Four jobs, each sending one update to each of five workers, all
/// colocated on one 10 Gbps egress.
pub fn run() -> QdiscStudy {
    let jobs = 4u64;
    let workers = 5u32;
    let update = 20_000_000u64;
    let transfers: Vec<Transfer> = (0..jobs)
        .flat_map(|j| {
            (0..workers).map(move |w| Transfer {
                tag: j + 1,
                dst: j as u32 * workers + w,
                bytes: update,
                band: Band(j as u8),
                arrival: SimTime::ZERO,
            })
        })
        .collect();
    let flat: Vec<Transfer> = transfers
        .iter()
        .map(|t| Transfer {
            band: Band(0),
            ..*t
        })
        .collect();

    let link = Bandwidth::from_gbps(10.0);
    let cases = [
        ("pfifo_fast", Qdisc::PfifoFast, &flat),
        (
            "per-job DRR",
            Qdisc::Drr {
                quantum_bytes: 64 * 1024,
            },
            &flat,
        ),
        ("strict priority", Qdisc::Prio, &transfers),
    ];
    let rows = cases
        .into_iter()
        .map(|(label, qdisc, ts)| {
            let run = PacketSim::new(link, qdisc).run(ts, &[]);
            let job_done: Vec<f64> = (1..=jobs)
                .map(|j| {
                    run.last_finish_of_tag(j)
                        .expect("job present")
                        .as_secs_f64()
                })
                .collect();
            QdiscRow {
                label,
                mean_done: job_done.iter().sum::<f64>() / jobs as f64,
                job_done,
            }
        })
        .collect();
    QdiscStudy { rows }
}

impl QdiscStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: qdisc disciplines, 4 jobs × 5 updates on one egress",
            &["Discipline", "job completions (s)", "mean (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.label.to_string(),
                r.job_done
                    .iter()
                    .map(|d| format!("{d:.3}"))
                    .collect::<Vec<_>>()
                    .join(" / "),
                format!("{:.3}", r.mean_done),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_minimizes_mean_completion() {
        let s = run();
        let by = |label: &str| {
            s.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
        };
        let fifo = by("pfifo_fast");
        let drr = by("per-job DRR");
        let prio = by("strict priority");
        // Under FIFO every job finishes near the end.
        let total = 4.0 * 5.0 * 20e6 / 1.25e9;
        for &d in &fifo.job_done {
            assert!((d - total).abs() < 0.02, "{d}");
        }
        // Priority staircases completions: mean is much lower.
        assert!(prio.mean_done < fifo.mean_done * 0.75);
        // Per-job fairness alone does not fix it: DRR's mean stays close to
        // FIFO's (each job drains at 1/4 rate until the very end).
        assert!(drr.mean_done > prio.mean_done);
        // All disciplines are work conserving: the last job ends at `total`.
        for r in &s.rows {
            let last = r.job_done.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!((last - total).abs() < 0.02, "{}: {last}", r.label);
        }
        assert!(s.table().render().contains("strict priority"));
    }
}
