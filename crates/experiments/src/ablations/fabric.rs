//! Oversubscribed switch fabric: where end-host scheduling stops helping.
//!
//! The paper's testbed switch is non-blocking, so all contention happens at
//! host NICs — exactly where `tc` can act. Production aggregation fabrics
//! are often oversubscribed; the fabric then becomes a contention point no
//! end-host priority can control. This extension sweeps the core
//! oversubscription factor at placement *#8* (no PS colocation, so no NIC
//! contention): FIFO and TLs-One must converge as the fabric bottleneck
//! takes over, bounding where TensorLights is the right tool.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_net::Bandwidth;
use tl_workloads::GridSearchConfig;

/// One oversubscription data point.
#[derive(Debug, Clone, Serialize)]
pub struct FabricRow {
    /// Core oversubscription factor (1 = non-blocking; 4 = fabric carries a
    /// quarter of the aggregate edge bandwidth).
    pub oversubscription: f64,
    /// FIFO mean JCT (s).
    pub fifo_jct: f64,
    /// TLs-One mean JCT normalized over FIFO.
    pub tls_one_norm: f64,
}

/// The sweep result.
#[derive(Debug, Serialize)]
pub struct FabricAblation {
    /// One row per factor, ascending.
    pub rows: Vec<FabricRow>,
}

/// Sweep fabric oversubscription at placement #8.
pub fn run(cfg: &ExperimentConfig, factors: &[f64]) -> FabricAblation {
    let mut tasks = Vec::new();
    for &f in factors {
        for p in [PolicyKind::Fifo, PolicyKind::TlsOne] {
            tasks.push((f, p));
        }
    }
    let outs = parallel_map(tasks, |(factor, policy)| {
        assert!(factor >= 1.0, "oversubscription factor must be >= 1");
        let placement = table1_placement(Table1Index(8), 21, 21);
        let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        let mut sim_cfg = cfg.sim_config();
        if factor > 1.0 {
            // Edge aggregate: 21 hosts × link. The core carries 1/factor of
            // it (factor == 1.0 keeps the paper's non-blocking switch).
            let edge_gbps = 21.0 * sim_cfg.link.gbps();
            sim_cfg.core_capacity = Some(Bandwidth::from_gbps(edge_gbps / factor));
        }
        let mut p = policy.build(cfg);
        let out = Simulation::new(sim_cfg)
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        out.mean_jct_secs()
    });
    let rows = factors
        .iter()
        .enumerate()
        .map(|(k, &factor)| FabricRow {
            oversubscription: factor,
            fifo_jct: outs[2 * k],
            tls_one_norm: outs[2 * k + 1] / outs[2 * k],
        })
        .collect();
    FabricAblation { rows }
}

impl FabricAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: fabric oversubscription (placement #8)",
            &["Oversub.", "FIFO JCT (s)", "TLs-One (norm.)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{:.0}:1", r.oversubscription),
                format!("{:.1}", r.fifo_jct),
                format!("{:.3}", r.tls_one_norm),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_bottleneck_is_policy_agnostic() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg, &[1.0, 32.0]);
        // Oversubscription slows everyone down...
        assert!(a.rows[1].fifo_jct > a.rows[0].fifo_jct * 1.2);
        // ...and end-host priorities cannot buy it back (no NIC contention
        // at #8): TLs ~ FIFO at both points.
        for r in &a.rows {
            assert!(
                (r.tls_one_norm - 1.0).abs() < 0.05,
                "factor {}: {}",
                r.oversubscription,
                r.tls_one_norm
            );
        }
        assert!(a.table().render().contains("Oversub."));
    }
}
