//! Job churn: open-loop arrivals and departures.
//!
//! The paper's grid-search evaluation launches all jobs at once, but its
//! design explicitly supports churn: "it suffices to reconfigure priority
//! assignment upon job arrival and departure" (TLs-One). This extension
//! launches the 21 jobs as a Poisson process, so the active job set (and
//! with it every host's band assignment) changes throughout the run, and
//! verifies TensorLights still helps and never hurts.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use simcore::{RngFactory, SimDuration};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::{poisson_arrivals, with_arrivals, GridSearchConfig};

/// One policy's outcome under churn.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRow {
    /// Policy label.
    pub policy: &'static str,
    /// Mean JCT (s).
    pub mean_jct: f64,
    /// Max JCT (s) — the job that suffered the most contention epochs.
    pub max_jct: f64,
}

/// The extension result.
#[derive(Debug, Serialize)]
pub struct ChurnStudy {
    /// Mean inter-arrival gap used (seconds).
    pub mean_gap_secs: f64,
    /// One row per policy.
    pub rows: Vec<ChurnRow>,
}

/// Run the churn scenario at placement #1 under all three policies.
///
/// `mean_gap_secs` controls overlap: a gap well below the per-job runtime
/// keeps many jobs concurrent; a huge gap degenerates to sequential jobs.
pub fn run(cfg: &ExperimentConfig, mean_gap_secs: f64) -> ChurnStudy {
    let mut rng = RngFactory::new(cfg.seed).stream("churn.arrivals");
    let arrivals = poisson_arrivals(&mut rng, 21, SimDuration::from_secs_f64(mean_gap_secs));
    let rows = parallel_map(PolicyKind::all().to_vec(), |policy| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let wl = GridSearchConfig::paper_scaled(cfg.iterations);
        let setups = with_arrivals(wl.build(&placement), &arrivals);
        let mut p = policy.build(cfg);
        let out = Simulation::new(cfg.sim_config())
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        let jcts: Vec<f64> = out.jobs.iter().map(|j| j.jct_secs().unwrap()).collect();
        ChurnRow {
            policy: policy.label(),
            mean_jct: out.mean_jct_secs(),
            max_jct: jcts.iter().fold(0.0f64, |a, &b| a.max(b)),
        }
    });
    ChurnStudy {
        mean_gap_secs,
        rows,
    }
}

impl ChurnStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Extension: Poisson job churn (mean gap {:.1}s, placement #1)",
                self.mean_gap_secs
            ),
            &["Policy", "mean JCT (s)", "max JCT (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
                format!("{:.1}", r.max_jct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_survives_and_helps_under_churn() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 40;
        // Gaps around a tenth of the per-job runtime: heavy overlap with
        // constant arrival-driven reconfiguration.
        let s = run(&cfg, 3.0);
        assert_eq!(s.rows.len(), 3);
        let jct = |label: &str| {
            s.rows
                .iter()
                .find(|r| r.policy == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .mean_jct
        };
        assert!(
            jct("TLs-One") < jct("FIFO"),
            "TLs-One {} vs FIFO {}",
            jct("TLs-One"),
            jct("FIFO")
        );
        assert!(jct("TLs-RR") <= jct("FIFO") * 1.02);
        assert!(s.table().render().contains("Poisson"));
    }
}
