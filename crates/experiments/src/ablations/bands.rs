//! Band-count ablation.
//!
//! The paper: "tc only supports a limited number of priority bands. In our
//! experiments, we only use up to six distinct priority bands, and multiple
//! jobs may share the same priority band." How much does the band budget
//! matter for 21 contending jobs? One band collapses to FIFO; more bands
//! separate more jobs.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::parallel_map;
use serde::Serialize;
use simcore::SampleSet;
use tensorlights::{JobOrdering, TlsOne};
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One band-count data point.
#[derive(Debug, Clone, Serialize)]
pub struct BandsRow {
    /// Number of priority bands available.
    pub num_bands: u8,
    /// Mean JCT (seconds).
    pub mean_jct: f64,
    /// Average per-barrier wait variance (straggler indicator).
    pub wait_variance: f64,
}

/// The ablation result.
#[derive(Debug, Serialize)]
pub struct BandsAblation {
    /// One row per band count, ascending.
    pub rows: Vec<BandsRow>,
}

/// Run TLs-One at placement #1 with each band budget.
pub fn run(cfg: &ExperimentConfig, band_counts: &[u8]) -> BandsAblation {
    let rows = parallel_map(band_counts.to_vec(), |bands| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(&placement);
        let mut policy = TlsOne::new(JobOrdering::Random { seed: cfg.seed }).with_bands(bands);
        let out = Simulation::new(cfg.sim_config())
            .jobs(setups)
            .policy_ref(&mut policy)
            .run();
        assert!(out.all_complete());
        let mut vars = SampleSet::new();
        for j in &out.jobs {
            vars.extend_from(&j.barrier_vars);
        }
        BandsRow {
            num_bands: bands,
            mean_jct: out.mean_jct_secs(),
            wait_variance: vars.mean(),
        }
    });
    BandsAblation { rows }
}

impl BandsAblation {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: tc band budget (TLs-One, placement #1)",
            &["Bands", "mean JCT (s)", "wait variance (s^2)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.num_bands.to_string(),
                format!("{:.1}", r.mean_jct),
                format!("{:.5}", r.wait_variance),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_band_is_fifo_and_more_bands_help() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg, &[1, 6]);
        assert_eq!(a.rows.len(), 2);
        assert!(
            a.rows[1].mean_jct < a.rows[0].mean_jct * 0.85,
            "6 bands ({:.1}s) should clearly beat 1 band ({:.1}s)",
            a.rows[1].mean_jct,
            a.rows[0].mean_jct
        );
        assert!(a.table().render().contains("Bands"));
    }
}
