//! PS-aware placement vs end-host scheduling.
//!
//! The paper's §VII: "an effective approach to mitigate contention due to
//! model updates is to better schedule the placement of PS tasks before
//! starting a DL job" — at the cost of modifying the cluster scheduler.
//! This experiment quantifies the trade: a PS-aware spread placement under
//! plain FIFO, versus TensorLights rescuing the scheduler-agnostic
//! worst-case placement.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, run_grid_search, PolicyKind};
use serde::Serialize;
use simcore::RngFactory;
use tl_cluster::{make_placement, table1_placement, Placement, PlacementStrategy, Table1Index};

/// One scenario's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PsAwareRow {
    /// Scenario label.
    pub label: String,
    /// Mean JCT (s).
    pub mean_jct: f64,
}

/// The comparison result.
#[derive(Debug, Serialize)]
pub struct PsAwareStudy {
    /// All scenarios.
    pub rows: Vec<PsAwareRow>,
}

/// Run the comparison.
pub fn run(cfg: &ExperimentConfig) -> PsAwareStudy {
    let mut rng = RngFactory::new(cfg.seed).stream("ps_aware.random_placement");
    let scenarios: Vec<(String, Placement, PolicyKind)> = vec![
        (
            "colocated (#1) + FIFO".into(),
            table1_placement(Table1Index(1), 21, 21),
            PolicyKind::Fifo,
        ),
        (
            "colocated (#1) + TLs-One".into(),
            table1_placement(Table1Index(1), 21, 21),
            PolicyKind::TlsOne,
        ),
        (
            "random scheduler + FIFO".into(),
            make_placement(PlacementStrategy::Random, 21, 21, 20, &mut rng),
            PolicyKind::Fifo,
        ),
        (
            "random scheduler + TLs-One".into(),
            make_placement(PlacementStrategy::Random, 21, 21, 20, &mut rng),
            PolicyKind::TlsOne,
        ),
        (
            "PS-aware spread + FIFO".into(),
            make_placement(PlacementStrategy::Spread, 21, 21, 20, &mut rng),
            PolicyKind::Fifo,
        ),
    ];
    let rows = parallel_map(scenarios, |(label, placement, policy)| {
        let out = run_grid_search(cfg, &placement, policy, 4, None);
        assert!(out.all_complete(), "{label}");
        PsAwareRow {
            label,
            mean_jct: out.mean_jct_secs(),
        }
    });
    PsAwareStudy { rows }
}

impl PsAwareStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: PS-aware scheduling (§VII) vs TensorLights",
            &["Scenario", "mean JCT (s)"],
        );
        for r in &self.rows {
            t.push_row(vec![r.label.clone(), format!("{:.1}", r.mean_jct)]);
        }
        t
    }

    /// Mean JCT of a scenario by label.
    pub fn jct(&self, label: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("missing scenario {label}"))
            .mean_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_best_but_tls_recovers_most() {
        let cfg = ExperimentConfig::quick();
        let s = run(&cfg);
        let worst = s.jct("colocated (#1) + FIFO");
        let rescued = s.jct("colocated (#1) + TLs-One");
        let spread = s.jct("PS-aware spread + FIFO");
        assert!(spread < worst, "PS-aware placement avoids the problem");
        assert!(rescued < worst, "TLs rescues the bad placement");
        // TLs recovers at least half of the placement gap without touching
        // the scheduler.
        let recovered = (worst - rescued) / (worst - spread);
        assert!(recovered > 0.5, "recovered only {recovered:.2}");
        // TLs also helps (or at least never hurts) random placements.
        assert!(s.jct("random scheduler + TLs-One") <= s.jct("random scheduler + FIFO") * 1.02);
    }
}
