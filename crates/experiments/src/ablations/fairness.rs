//! Progress fairness over time: why TLs-RR exists.
//!
//! The paper: "fairness is desirable in grid search, because when all
//! search instances have made similar progress, a DL engineer may compare
//! the accuracy performance of concurrent grid-search instances." Under
//! TLs-One, high-priority jobs pull ahead for the whole run; under TLs-RR
//! the rotation keeps the *progress spread* — the gap in global steps
//! between the fastest and slowest job — bounded.
//!
//! This experiment samples every job's global step over time and reports
//! the normalized progress spread (max − min, as a fraction of the target)
//! for TLs-One vs TLs-RR at placement #1.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::runner::{parallel_map, PolicyKind};
use serde::Serialize;
use simcore::SimDuration;
use tl_cluster::{table1_placement, Table1Index};
use tl_dl::Simulation;
use tl_workloads::GridSearchConfig;

/// One policy's progress-spread trajectory.
#[derive(Debug, Serialize)]
pub struct FairnessSide {
    /// Policy label.
    pub label: &'static str,
    /// `(seconds, spread as fraction of the step target)` over time.
    pub spread_series: Vec<(f64, f64)>,
    /// The worst spread seen at any sample.
    pub max_spread: f64,
    /// Mean JCT (s) — the efficiency side of the trade.
    pub mean_jct: f64,
}

/// The comparison.
#[derive(Debug, Serialize)]
pub struct FairnessStudy {
    /// TLs-One and TLs-RR sides.
    pub sides: Vec<FairnessSide>,
}

/// Sample progress under both TLs variants at placement #1.
pub fn run(cfg: &ExperimentConfig, sample_secs: f64) -> FairnessStudy {
    let sides = parallel_map(vec![PolicyKind::TlsOne, PolicyKind::TlsRr], |policy| {
        let placement = table1_placement(Table1Index(1), 21, 21);
        let wl = GridSearchConfig::paper_scaled(cfg.iterations);
        let target = wl.target_global_steps as f64;
        let setups = wl.build(&placement);
        let mut sim_cfg = cfg.sim_config();
        sim_cfg.sample_interval = Some(SimDuration::from_secs_f64(sample_secs));
        let mut p = policy.build(cfg);
        let out = Simulation::new(sim_cfg)
            .jobs(setups)
            .policy_ref(p.as_mut())
            .run();
        assert!(out.all_complete());
        let spread_series: Vec<(f64, f64)> = out
            .samples
            .iter()
            .map(|s| {
                let max = *s.job_progress.iter().max().expect("jobs present");
                let min = *s.job_progress.iter().min().expect("jobs present");
                (s.at.as_secs_f64(), (max - min) as f64 / target)
            })
            .collect();
        FairnessSide {
            label: policy.label(),
            max_spread: spread_series.iter().map(|&(_, s)| s).fold(0.0f64, f64::max),
            mean_jct: out.mean_jct_secs(),
            spread_series,
        }
    });
    FairnessStudy { sides }
}

impl FairnessStudy {
    /// Rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension: progress fairness over time (placement #1)",
            &["Policy", "max progress spread", "mean JCT (s)"],
        );
        for s in &self.sides {
            t.push_row(vec![
                s.label.to_string(),
                format!("{:.1}% of target", s.max_spread * 100.0),
                format!("{:.1}", s.mean_jct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_bounds_progress_spread() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 60;
        // Rotate briskly so the short run sees many rotations.
        cfg.rr_interval = simcore::SimDuration::from_secs_f64(0.5);
        let s = run(&cfg, 1.0);
        let one = &s.sides[0];
        let rr = &s.sides[1];
        assert!(!one.spread_series.is_empty());
        assert!(
            rr.max_spread < one.max_spread,
            "TLs-RR spread {:.3} should stay below TLs-One {:.3}",
            rr.max_spread,
            one.max_spread
        );
        assert!(s.table().render().contains("progress spread"));
    }
}
