//! Terminal charts: CDF plots and bar charts for the repro output.
//!
//! The paper's Figures 2, 3, 5 and 6 are bar charts and CDFs; these
//! renderers make `repro`'s stdout a legible approximation of them without
//! any plotting dependency.

/// Render several CDF series (as produced by
/// [`simcore::SampleSet::cdf`]) into one ASCII plot.
///
/// X is the value axis (linear, spanning all series); Y is cumulative
/// probability 0..1. Each series uses its own glyph.
pub fn cdf_chart(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    assert!(!series.is_empty(), "no series");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, pts) in series {
        for &(v, _) in *pts {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        hi = lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(v, p) in *pts {
            let x = (((v - lo) / (hi - lo)) * (width - 1) as f64).round() as usize;
            let y = ((1.0 - p) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (yi, row) in grid.iter().enumerate() {
        let label = if yi == 0 {
            "1.0 "
        } else if yi == height - 1 {
            "0.0 "
        } else {
            "    "
        };
        out.push_str(label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "    +{}\n     {:<w$.3}{:>w2$.3}\n",
        "-".repeat(width),
        lo,
        hi,
        w = width / 2,
        w2 = width - width / 2
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("     {} {}\n", GLYPHS[si % GLYPHS.len()], label));
    }
    out
}

/// Render labelled values as a horizontal bar chart.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    assert!(width >= 10, "chart too small");
    assert!(!rows.is_empty(), "no rows");
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (label, v) in rows {
        let bars = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} |{} {v:.1}\n",
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_chart_renders_both_series() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (i + 1) as f64 / 10.0)).collect();
        let b: Vec<(f64, f64)> = (0..10)
            .map(|i| (2.0 * i as f64, (i + 1) as f64 / 10.0))
            .collect();
        let s = cdf_chart("waits", &[("fast", &a), ("slow", &b)], 40, 10);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("1.0 |"));
        assert!(s.contains("0.0 |"));
        assert!(s.contains("fast") && s.contains("slow"));
        assert!(s.contains("0.000"), "x-axis lower bound");
        assert!(s.contains("18.000"), "x-axis upper bound");
    }

    #[test]
    fn cdf_chart_handles_degenerate_range() {
        let a = [(5.0, 1.0)];
        let s = cdf_chart("point", &[("p", &a)], 20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("short".to_string(), 1.0), ("long".to_string(), 4.0)];
        let s = bar_chart("jct", &rows, 20);
        let short_bars = s.lines().find(|l| l.contains("short")).unwrap();
        let long_bars = s.lines().find(|l| l.contains("long")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(long_bars), 20);
        assert_eq!(count(short_bars), 5);
    }

    #[test]
    fn bar_chart_all_zero_is_fine() {
        let rows = vec![("a".to_string(), 0.0)];
        let s = bar_chart("zeros", &rows, 20);
        assert!(s.contains("a"));
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn cdf_chart_rejects_empty() {
        let _ = cdf_chart("x", &[], 20, 5);
    }
}
