//! Differential validation — fluid ↔ packet oracle through the DL engine.
//!
//! The big experiments all run on the fluid max-min network model. The
//! chunk-level packet engine ([`tl_net::PacketNet`]) was built
//! independently from the same physical description (store-and-forward
//! NICs, strict-priority egress, FIFO ingress), so the two models act as
//! oracles for each other: any scenario where they disagree beyond chunk
//! quantization is a bug in one of them — or in the engine that drives
//! them.
//!
//! This module generates a seeded matrix of randomized scenarios —
//! placements × policies × arrival patterns × fault plans — and runs each
//! one through the *full* training simulation twice, once per backend
//! (`SimConfig::backend`), with runtime invariant checks enabled on both
//! sides. It reports per-job JCT divergence against a documented
//! tolerance and fails (non-zero exit from `repro --experiment validate`)
//! on any invariant violation, incomplete job, or out-of-tolerance
//! divergence.
//!
//! ## Tolerances
//!
//! The packet model differs from the fluid model by design in three ways:
//! chunk quantization (64 KiB grains instead of continuous rates),
//! store-and-forward pipelining (a chunk occupies the sender NIC, then
//! the receiver NIC), and round-robin instead of weighted sharing within
//! a band. The scenarios therefore run with `net_weight_sigma = 0`
//! (weights are all 1.0; the RR limitation is documented on
//! [`tl_dl::backend`]) and accept per-job JCT divergence up to:
//!
//! * **relative** [`TOL_REL_HEALTHY`] on healthy runs — chunk rounding
//!   compounds per barrier, and a barrier waits for the *slowest* worker,
//!   so divergence grows with contention but stays well under this bound
//!   on every scenario shape generated here (the engine-level test
//!   `backends_agree_on_jct_within_chunk_tolerance` pins the same bound);
//! * **relative** [`TOL_REL_FAULTED`] on faulted runs — a fault window at
//!   a fixed wall-clock time lands on different barrier phases in the two
//!   models, so recovery stalls amplify timing differences. Faulted
//!   scenarios primarily validate *robustness equivalence* (both backends
//!   complete every job with clean invariants), with the looser JCT bound
//!   as a tripwire for gross disagreement;
//! * **absolute** [`TOL_ABS_SECS`] as a floor, so near-zero JCTs are not
//!   held to a relative standard tighter than a handful of chunk windows.

use crate::config::ExperimentConfig;
use crate::report::Table;
use crate::orchestrator::{self, CellRecord, SweepOptions};
use crate::runner::PolicyKind;
use serde::{Deserialize, Serialize};
use simcore::{RngFactory, SimDuration, SimTime};
use tl_cluster::{grouped_placement, Placement};
use tl_dl::{
    BarrierLossPolicy, FaultPlan, ModelSpec, NetBackendKind, SimError, SimOutput, Simulation,
    TopologySpec, TrafficPattern,
};
use tl_telemetry::{SimEvent, TimedEvent};
use tl_workloads::{poisson_arrivals, with_arrivals, GridSearchConfig};

/// Relative per-job JCT tolerance on healthy (fault-free) scenarios.
pub const TOL_REL_HEALTHY: f64 = 0.15;
/// Relative per-job JCT tolerance on faulted scenarios.
pub const TOL_REL_FAULTED: f64 = 0.50;
/// Absolute divergence floor, seconds (≈ 500 chunk serializations at
/// 10 Gb/s — generous against per-barrier rounding on these short runs).
pub const TOL_ABS_SECS: f64 = 0.025;

/// Single-switch scenarios generated per sweep (≥ 20 by design).
pub const NUM_FLAT_SCENARIOS: usize = 24;
/// Multi-tier (leaf–spine) scenarios appended to the matrix: ring and
/// hierarchical patterns, varying oversubscription, both arrival shapes.
pub const NUM_FABRIC_SCENARIOS: usize = 8;
/// Total scenarios per sweep.
pub const NUM_SCENARIOS: usize = NUM_FLAT_SCENARIOS + NUM_FABRIC_SCENARIOS;

/// How a scenario's PSes are spread over hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementShape {
    /// Every PS on host 0 (the paper's worst case, Table I #1).
    Colocated,
    /// PSes in two groups on two hosts.
    Split,
    /// One PS per host (Table I #8).
    Spread,
}

impl PlacementShape {
    fn label(self) -> &'static str {
        match self {
            PlacementShape::Colocated => "colocated",
            PlacementShape::Split => "split",
            PlacementShape::Spread => "spread",
        }
    }
}

/// How a scenario's jobs arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// The paper's 100 ms launch stagger.
    Staggered,
    /// Open-loop Poisson arrivals (seeded per scenario).
    Poisson,
}

impl ArrivalPattern {
    fn label(self) -> &'static str {
        match self {
            ArrivalPattern::Staggered => "staggered",
            ArrivalPattern::Poisson => "poisson",
        }
    }
}

/// One generated differential scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index in the sweep (also salts the per-scenario RNG streams).
    pub id: usize,
    /// PS spread.
    pub shape: PlacementShape,
    /// Priority policy under test.
    pub policy: PolicyKind,
    /// Job arrival pattern.
    pub arrivals: ArrivalPattern,
    /// Seeded fault-plan intensity (0 = healthy).
    pub fault_intensity: f64,
    /// Concurrent jobs.
    pub num_jobs: u32,
    /// Workers per job.
    pub workers: u32,
    /// Model update size, MB.
    pub model_mb: u64,
    /// Link graph the scenario runs on.
    pub topology: TopologySpec,
    /// Traffic pattern the jobs use.
    pub pattern: TrafficPattern,
}

impl Scenario {
    fn num_hosts(&self) -> u32 {
        // Spread needs one host per PS; every shape needs workers + 1.
        (self.workers + 1).max(self.num_jobs)
    }

    fn placement(&self) -> Placement {
        let n = self.num_jobs;
        let groups: Vec<u32> = match self.shape {
            PlacementShape::Colocated => vec![n],
            PlacementShape::Split => vec![n.div_ceil(2), n / 2]
                .into_iter()
                .filter(|&g| g > 0)
                .collect(),
            PlacementShape::Spread => vec![1; n as usize],
        };
        grouped_placement(self.num_hosts(), self.workers, &groups)
    }

    /// Materialize the job set (fresh each call; deterministic).
    fn setups(&self, ecfg: &ExperimentConfig) -> Vec<tl_dl::JobSetup> {
        let wl = GridSearchConfig {
            num_jobs: self.num_jobs,
            workers_per_job: self.workers,
            model: ModelSpec::synthetic_mb(self.model_mb),
            local_batch_size: 4,
            target_global_steps: ecfg.iterations * self.workers as u64,
            launch_stagger: SimDuration::from_millis(100),
            mode: tl_dl::TrainingMode::Synchronous,
            base_port: 2222,
        };
        let setups = wl.build(&self.placement());
        match self.arrivals {
            ArrivalPattern::Staggered => setups,
            ArrivalPattern::Poisson => {
                let mut rng = RngFactory::new(ecfg.seed)
                    .indexed_stream("validate-arrivals", self.id as u64);
                let arrivals = poisson_arrivals(
                    &mut rng,
                    self.num_jobs as usize,
                    SimDuration::from_millis(150),
                );
                with_arrivals(setups, &arrivals)
            }
        }
    }
}

/// The experiment configuration the scenarios run under: weights pinned
/// to 1.0 (the packet model's round-robin is unweighted — see
/// [`tl_dl::backend`]), light compute so the network matters, and a
/// rotation interval short enough that TLs-RR re-bands mid-run.
fn scenario_cfg(master: &ExperimentConfig) -> ExperimentConfig {
    ExperimentConfig {
        // Clamp: packet runs cost O(bytes); long sweeps add no coverage.
        iterations: master.iterations.clamp(2, 6),
        seed: master.seed,
        per_sample_core_secs: 0.02,
        compute_sigma: 0.05,
        net_sigma: 0.0,
        rr_interval: SimDuration::from_millis(250),
        num_bands: 6,
        link_gbps: 10.0,
        // Per-scenario; `run_backend` installs the scenario's own.
        topology: TopologySpec::SingleSwitch,
        pattern: TrafficPattern::PsStar,
        alloc_workers: master.alloc_workers,
        alloc_kernel: master.alloc_kernel,
        par_min_flows: master.par_min_flows,
        par_min_component_flows: master.par_min_component_flows,
    }
}

/// The seeded scenario matrix. Dimensions are cycled at co-prime strides
/// so all policies, shapes, arrival patterns, and fault intensities mix.
/// The first [`NUM_FLAT_SCENARIOS`] run the paper's single switch with
/// the PS star; the remaining [`NUM_FABRIC_SCENARIOS`] run on leaf–spine
/// fabrics of varying oversubscription under all three traffic patterns
/// (fault-free — fault injection is only modelled for the ps-star
/// pattern, and the multi-tier rows validate topology, not recovery).
pub fn scenarios(master: &ExperimentConfig) -> Vec<Scenario> {
    let _ = master; // matrix is structural; the seed enters via the runs
    let mut scs: Vec<Scenario> = (0..NUM_FLAT_SCENARIOS)
        .map(|i| Scenario {
            id: i,
            shape: match i % 3 {
                0 => PlacementShape::Colocated,
                1 => PlacementShape::Split,
                _ => PlacementShape::Spread,
            },
            policy: PolicyKind::all()[(i / 3) % 3],
            arrivals: if (i / 2) % 2 == 0 {
                ArrivalPattern::Staggered
            } else {
                ArrivalPattern::Poisson
            },
            fault_intensity: if i % 4 == 3 { 1.0 } else { 0.0 },
            num_jobs: 2 + (i as u32 % 3),
            workers: 2 + ((i as u32 / 4) % 2),
            model_mb: [8, 16, 32][(i / 5) % 3],
            topology: TopologySpec::SingleSwitch,
            pattern: TrafficPattern::PsStar,
        })
        .collect();
    for k in 0..NUM_FABRIC_SCENARIOS {
        let i = NUM_FLAT_SCENARIOS + k;
        scs.push(Scenario {
            id: i,
            shape: match (k + 1) % 3 {
                0 => PlacementShape::Colocated,
                1 => PlacementShape::Split,
                _ => PlacementShape::Spread,
            },
            policy: PolicyKind::all()[(k / 3) % 3],
            arrivals: if k % 2 == 0 {
                ArrivalPattern::Staggered
            } else {
                ArrivalPattern::Poisson
            },
            fault_intensity: 0.0,
            num_jobs: 2 + (k as u32 % 3),
            workers: 2 + ((k as u32 / 3) % 2),
            model_mb: [8, 16, 32][k % 3],
            // 2 racks x 3 hosts covers every shape above; oversubscription
            // cycles through non-blocking, 2:1, and 4:1.
            topology: TopologySpec::LeafSpine {
                racks: 2,
                hosts_per_rack: 3,
                oversub: [1.0, 2.0, 4.0][(k / 2) % 3],
            },
            pattern: TrafficPattern::all()[k % 3],
        });
    }
    scs
}

/// One scenario's differential verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Scenario index.
    pub id: usize,
    /// PS spread label.
    pub placement: String,
    /// Policy label.
    pub policy: String,
    /// Arrival pattern label.
    pub arrivals: String,
    /// Topology label (`single-switch` or `leaf-spine:RxH@O`).
    pub topology: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Fault intensity (0 = healthy).
    pub fault_intensity: f64,
    /// Concurrent jobs.
    pub num_jobs: u32,
    /// Workers per job.
    pub workers: u32,
    /// Model update size, MB.
    pub model_mb: u64,
    /// Largest per-job relative JCT divergence.
    pub max_rel_divergence: f64,
    /// Largest per-job absolute JCT divergence, seconds.
    pub max_abs_divergence_secs: f64,
    /// Job with the largest divergence (-1 if no comparable pair).
    pub worst_job: i64,
    /// That job's fluid JCT, seconds (0 if none).
    pub worst_fluid_jct: f64,
    /// That job's packet JCT, seconds (0 if none).
    pub worst_packet_jct: f64,
    /// Relative tolerance applied to this scenario.
    pub tol_rel: f64,
    /// Invariant violations recorded by the fluid run.
    pub fluid_violations: usize,
    /// Invariant violations recorded by the packet run.
    pub packet_violations: usize,
    /// Jobs completed under the fluid backend.
    pub fluid_completed: usize,
    /// Jobs completed under the packet backend.
    pub packet_completed: usize,
    /// Engine error, if a run failed outright (empty otherwise).
    pub error: String,
    /// Scenario verdict: complete, clean, and within tolerance.
    pub pass: bool,
}

/// The sweep's outcome: one row per scenario plus the tolerances applied.
#[derive(Debug, Serialize)]
pub struct ValidateResult {
    /// Relative tolerance, healthy scenarios.
    pub tol_rel_healthy: f64,
    /// Relative tolerance, faulted scenarios.
    pub tol_rel_faulted: f64,
    /// Absolute divergence floor, seconds.
    pub tol_abs_secs: f64,
    /// Iterations per job after clamping.
    pub iterations: u64,
    /// Per-scenario verdicts, id order.
    pub rows: Vec<ScenarioRow>,
}

fn run_backend(
    ecfg: &ExperimentConfig,
    sc: &Scenario,
    faults: FaultPlan,
    backend: NetBackendKind,
) -> Result<SimOutput, SimError> {
    let mut sim_cfg = ecfg.sim_config();
    sim_cfg.backend = backend;
    sim_cfg.invariants = true;
    sim_cfg.net_weight_sigma = 0.0;
    sim_cfg.faults = faults;
    sim_cfg.barrier_loss = BarrierLossPolicy::StallUntilRecovery;
    sim_cfg.topology = sc.topology;
    sim_cfg.pattern = sc.pattern;
    let mut policy = sc.policy.build(ecfg);
    Simulation::new(sim_cfg)
        .jobs(sc.setups(ecfg))
        .policy_ref(policy.as_mut())
        .try_run()
}

fn run_scenario(ecfg: &ExperimentConfig, sc: &Scenario) -> ScenarioRow {
    let faulted = sc.fault_intensity > 0.0;
    let tol_rel = if faulted {
        TOL_REL_FAULTED
    } else {
        TOL_REL_HEALTHY
    };
    let mut row = ScenarioRow {
        id: sc.id,
        placement: sc.shape.label().to_string(),
        policy: sc.policy.label().to_string(),
        arrivals: sc.arrivals.label().to_string(),
        topology: sc.topology.to_string(),
        pattern: sc.pattern.name().to_string(),
        fault_intensity: sc.fault_intensity,
        num_jobs: sc.num_jobs,
        workers: sc.workers,
        model_mb: sc.model_mb,
        max_rel_divergence: 0.0,
        max_abs_divergence_secs: 0.0,
        worst_job: -1,
        worst_fluid_jct: 0.0,
        worst_packet_jct: 0.0,
        tol_rel,
        fluid_violations: 0,
        packet_violations: 0,
        fluid_completed: 0,
        packet_completed: 0,
        error: String::new(),
        pass: false,
    };

    // Faulted scenarios pin their fault horizon from a healthy fluid
    // baseline, so seeded faults land while work is in flight.
    let plan = if faulted {
        match run_backend(ecfg, sc, FaultPlan::default(), NetBackendKind::Fluid) {
            Ok(healthy) => FaultPlan::seeded(
                ecfg.seed ^ (0x9e37_79b9 + sc.id as u64),
                sc.fault_intensity,
                sc.num_hosts(),
                sc.num_jobs,
                healthy.end_time.as_secs_f64() * 0.5,
            ),
            Err(e) => {
                row.error = format!("healthy baseline: {e}");
                return row;
            }
        }
    } else {
        FaultPlan::default()
    };

    let fluid = match run_backend(ecfg, sc, plan.clone(), NetBackendKind::Fluid) {
        Ok(out) => out,
        Err(e) => {
            row.error = format!("fluid backend: {e}");
            return row;
        }
    };
    let packet = match run_backend(ecfg, sc, plan, NetBackendKind::Packet) {
        Ok(out) => out,
        Err(e) => {
            row.error = format!("packet backend: {e}");
            return row;
        }
    };

    row.fluid_violations = fluid.invariant_violations.len();
    row.packet_violations = packet.invariant_violations.len();
    row.fluid_completed = fluid.jobs.iter().filter(|j| j.completion.is_some()).count();
    row.packet_completed = packet
        .jobs
        .iter()
        .filter(|j| j.completion.is_some())
        .count();

    let mut within = true;
    for (k, (f, p)) in fluid.jobs.iter().zip(&packet.jobs).enumerate() {
        let (Some(fj), Some(pj)) = (f.jct_secs(), p.jct_secs()) else {
            continue;
        };
        let abs = (fj - pj).abs();
        let rel = abs / fj.max(pj).max(f64::MIN_POSITIVE);
        if rel > row.max_rel_divergence {
            row.max_rel_divergence = rel;
            row.max_abs_divergence_secs = abs;
            row.worst_job = k as i64;
            row.worst_fluid_jct = fj;
            row.worst_packet_jct = pj;
        }
        if rel > tol_rel && abs > TOL_ABS_SECS {
            within = false;
        }
    }

    let n = sc.num_jobs as usize;
    row.pass = within
        && row.fluid_violations == 0
        && row.packet_violations == 0
        && row.fluid_completed == n
        && row.packet_completed == n;
    row
}

/// Run the differential sweep: every scenario through both backends.
/// Panics if any scenario cell fails outright (engine errors are still
/// per-row data, not failures); `repro` uses [`run_with`] and degrades.
pub fn run(master: &ExperimentConfig) -> ValidateResult {
    let (result, records) = run_with(master, &SweepOptions::ephemeral());
    if let Some(bad) = records.iter().find(|c| !c.outcome.is_ok()) {
        panic!("validate cell {} — {}", bad.label, bad.outcome);
    }
    result
}

/// [`run`] through the crash-safe orchestrator: per-scenario isolation,
/// optional checkpoint ledger, and the per-cell audit trail.
pub fn run_with(
    master: &ExperimentConfig,
    opts: &SweepOptions,
) -> (ValidateResult, Vec<CellRecord>) {
    let ecfg = scenario_cfg(master);
    let context = format!(
        "cfg={};tol={TOL_REL_HEALTHY}/{TOL_REL_FAULTED}/{TOL_ABS_SECS}",
        serde_json::to_string(&ecfg).expect("config serializes"),
    );
    let run_cfg = ecfg.clone();
    let out = orchestrator::run_sweep(
        "validate",
        &context,
        opts,
        scenarios(master),
        |sc| {
            format!(
                "id={},placement={},policy={},arrivals={},topo={},pattern={},fault={},jobs={},workers={},mb={}",
                sc.id,
                sc.shape.label(),
                sc.policy.label(),
                sc.arrivals.label(),
                sc.topology,
                sc.pattern.name(),
                sc.fault_intensity,
                sc.num_jobs,
                sc.workers,
                sc.model_mb,
            )
        },
        move |sc| run_scenario(&run_cfg, &sc),
    );
    (
        ValidateResult {
            tol_rel_healthy: TOL_REL_HEALTHY,
            tol_rel_faulted: TOL_REL_FAULTED,
            tol_abs_secs: TOL_ABS_SECS,
            iterations: ecfg.iterations,
            rows: out.rows,
        },
        out.cells,
    )
}

impl ValidateResult {
    /// True when every scenario completed, stayed clean, and agreed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Differential validation: fluid vs packet backend".to_string(),
            &[
                "id",
                "placement",
                "policy",
                "arrivals",
                "topology",
                "pattern",
                "fault",
                "jobs x workers",
                "MB",
                "max rel",
                "max abs (ms)",
                "viol f/p",
                "pass",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.id.to_string(),
                r.placement.to_string(),
                r.policy.to_string(),
                r.arrivals.to_string(),
                r.topology.clone(),
                r.pattern.to_string(),
                format!("{:.1}", r.fault_intensity),
                format!("{}x{}", r.num_jobs, r.workers),
                r.model_mb.to_string(),
                format!("{:.4}", r.max_rel_divergence),
                format!("{:.2}", r.max_abs_divergence_secs * 1e3),
                format!("{}/{}", r.fluid_violations, r.packet_violations),
                if r.pass {
                    "ok".into()
                } else if r.error.is_empty() {
                    "FAIL".into()
                } else {
                    format!("FAIL ({})", r.error)
                },
            ]);
        }
        t
    }

    /// Headline: pass count and the worst divergences per regime.
    pub fn summary(&self) -> String {
        let passed = self.rows.iter().filter(|r| r.pass).count();
        let worst = |faulted: bool| -> f64 {
            self.rows
                .iter()
                .filter(|r| (r.fault_intensity > 0.0) == faulted)
                .map(|r| r.max_rel_divergence)
                .fold(0.0, f64::max)
        };
        format!(
            "{passed}/{} scenarios agree across backends; worst rel divergence \
             {:.4} healthy (tol {}), {:.4} faulted (tol {}); abs floor {} ms \
             [oracle cross-check: no paper counterpart]",
            self.rows.len(),
            worst(false),
            self.tol_rel_healthy,
            worst(true),
            self.tol_rel_faulted,
            self.tol_abs_secs * 1e3,
        )
    }

    /// Telemetry marks for `--trace-out`: one per failing or divergent
    /// scenario (at the worst job's fluid JCT), plus a closing summary.
    pub fn mark_events(&self) -> Vec<TimedEvent> {
        let mut events = Vec::new();
        let mut end = 0.0f64;
        for r in &self.rows {
            end = end.max(r.worst_fluid_jct);
            if r.pass && r.max_rel_divergence <= r.tol_rel / 2.0 {
                continue;
            }
            events.push(TimedEvent {
                at: SimTime::from_secs_f64(r.worst_fluid_jct.max(0.0)),
                event: SimEvent::Mark {
                    scope: "validate",
                    message: format!(
                        "scenario {} ({}/{}/{} on {} via {}, fault {:.1}): {} — job {} fluid \
                         {:.3}s vs packet {:.3}s (rel {:.4}, tol {}), violations {}/{}{}",
                        r.id,
                        r.placement,
                        r.policy,
                        r.arrivals,
                        r.topology,
                        r.pattern,
                        r.fault_intensity,
                        if r.pass { "divergent but in tolerance" } else { "FAIL" },
                        r.worst_job,
                        r.worst_fluid_jct,
                        r.worst_packet_jct,
                        r.max_rel_divergence,
                        r.tol_rel,
                        r.fluid_violations,
                        r.packet_violations,
                        if r.error.is_empty() {
                            String::new()
                        } else {
                            format!("; error: {}", r.error)
                        },
                    ),
                },
            });
        }
        events.push(TimedEvent {
            at: SimTime::from_secs_f64(end),
            event: SimEvent::Mark {
                scope: "validate",
                message: self.summary(),
            },
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_dimension() {
        let cfg = ExperimentConfig::quick();
        let scs = scenarios(&cfg);
        assert!(scs.len() >= 20, "need at least 20 scenarios");
        for shape in [
            PlacementShape::Colocated,
            PlacementShape::Split,
            PlacementShape::Spread,
        ] {
            assert!(scs.iter().any(|s| s.shape == shape), "{shape:?} missing");
        }
        for policy in PolicyKind::all() {
            assert!(scs.iter().any(|s| s.policy == policy));
        }
        assert!(scs.iter().any(|s| s.arrivals == ArrivalPattern::Poisson));
        assert!(scs.iter().any(|s| s.arrivals == ArrivalPattern::Staggered));
        assert!(scs.iter().any(|s| s.fault_intensity > 0.0));
        assert!(scs.iter().any(|s| s.fault_intensity == 0.0));
        // Every scenario builds a well-formed placement.
        for s in &scs {
            assert_eq!(s.placement().jobs.len(), s.num_jobs as usize);
        }
        // Multi-tier coverage: enough leaf-spine scenarios, every traffic
        // pattern represented on them, every oversubscription tier swept,
        // and none of them faulted (faults are ps-star-only).
        let fabric: Vec<_> = scs
            .iter()
            .filter(|s| s.topology != TopologySpec::SingleSwitch)
            .collect();
        assert!(fabric.len() >= 6, "need >= 6 multi-tier scenarios");
        for p in TrafficPattern::all() {
            assert!(fabric.iter().any(|s| s.pattern == p), "{p} missing on fabric");
        }
        for o in [1.0, 2.0, 4.0] {
            assert!(
                fabric.iter().any(
                    |s| matches!(s.topology, TopologySpec::LeafSpine { oversub, .. } if oversub == o)
                ),
                "oversub {o} missing"
            );
        }
        assert!(fabric
            .iter()
            .all(|s| s.fault_intensity == 0.0 || s.pattern == TrafficPattern::PsStar));
        // The fabric is always big enough for its placement.
        for s in &fabric {
            if let TopologySpec::LeafSpine {
                racks,
                hosts_per_rack,
                ..
            } = s.topology
            {
                assert!(racks * hosts_per_rack >= s.num_hosts());
            }
        }
    }

    #[test]
    fn sweep_passes_and_serializes() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), NUM_SCENARIOS);
        for row in &r.rows {
            assert!(
                row.pass,
                "scenario {} ({}/{}/{} fault {:.1}): rel {:.4} abs {:.1}ms \
                 viol {}/{} completed {}/{} err '{}'",
                row.id,
                row.placement,
                row.policy,
                row.arrivals,
                row.fault_intensity,
                row.max_rel_divergence,
                row.max_abs_divergence_secs * 1e3,
                row.fluid_violations,
                row.packet_violations,
                row.fluid_completed,
                row.packet_completed,
                row.error,
            );
        }
        assert!(r.passed());
        assert!(r.table().render().contains("max rel"));
        assert!(r.summary().contains("scenarios agree"));
        // The JSON report round-trips through the vendored serde.
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        assert!(json.contains("tol_rel_healthy"));
        // The closing summary mark is always present.
        let marks = r.mark_events();
        assert!(!marks.is_empty());
        assert!(marks.iter().all(|m| m.event.kind() == "mark"));
    }

    #[test]
    fn scenario_comparison_is_deterministic() {
        let cfg = ExperimentConfig::quick();
        let ecfg = scenario_cfg(&cfg);
        let sc = &scenarios(&cfg)[0];
        let a = run_scenario(&ecfg, sc);
        let b = run_scenario(&ecfg, sc);
        assert_eq!(
            a.max_rel_divergence.to_bits(),
            b.max_rel_divergence.to_bits()
        );
        assert_eq!(a.worst_fluid_jct.to_bits(), b.worst_fluid_jct.to_bits());
        assert_eq!(a.pass, b.pass);
    }

    #[test]
    fn failing_row_is_flagged_and_marked() {
        let row = ScenarioRow {
            id: 7,
            placement: "colocated".to_string(),
            policy: "FIFO".to_string(),
            arrivals: "staggered".to_string(),
            topology: "single-switch".into(),
            pattern: "ps-star".to_string(),
            fault_intensity: 0.0,
            num_jobs: 3,
            workers: 2,
            model_mb: 8,
            max_rel_divergence: 0.9,
            max_abs_divergence_secs: 1.2,
            worst_job: 1,
            worst_fluid_jct: 1.0,
            worst_packet_jct: 2.2,
            tol_rel: TOL_REL_HEALTHY,
            fluid_violations: 1,
            packet_violations: 0,
            fluid_completed: 3,
            packet_completed: 3,
            error: String::new(),
            pass: false,
        };
        let r = ValidateResult {
            tol_rel_healthy: TOL_REL_HEALTHY,
            tol_rel_faulted: TOL_REL_FAULTED,
            tol_abs_secs: TOL_ABS_SECS,
            iterations: 4,
            rows: vec![row],
        };
        assert!(!r.passed());
        assert!(r.table().render().contains("FAIL"));
        let marks = r.mark_events();
        assert_eq!(marks.len(), 2, "failure mark + summary mark");
        assert!(matches!(
            &marks[0].event,
            SimEvent::Mark { scope: "validate", message } if message.contains("FAIL")
        ));
    }
}

