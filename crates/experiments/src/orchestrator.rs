//! Crash-safe sweep orchestrator: checkpoint/resume, per-cell isolation,
//! timeouts, and streaming results.
//!
//! Every sweep in the suite (scale, fabric, validate, faults, explain) runs
//! through [`run_sweep`]: the grid is broken into independent *cells*, each
//! identified by a stable content hash of its configuration, executed by a
//! work-stealing pool with every cell wrapped in `catch_unwind` plus an
//! optional wall-clock timeout. Results stream to an append-only JSONL
//! *ledger* (`<dir>/<sweep>.cells.jsonl`, fsync'd per line) as cells
//! complete, so a crash, kill, or Ctrl-C loses at most the cells still in
//! flight. Re-running with `resume` reads the ledger back: completed cells
//! are loaded instead of re-executed and land byte-identical in the merged
//! output (results are keyed by input index, so merge order never depends
//! on scheduling).
//!
//! A failed cell degrades to a typed [`CellOutcome`] instead of poisoning
//! the sweep; the caller inspects [`SweepOutcome`] after the queue drains
//! and decides the exit-code story (see `bin/repro`). Final merged JSON
//! artifacts are written with [`write_atomic`] (temp file + rename) so a
//! torn artifact can never be observed.
//!
//! ## Ledger format (version 1)
//!
//! Line 1 is a header binding the file to a sweep *and* its configuration:
//!
//! ```json
//! {"sweep":"fabric","context":"9f2c66...","version":1}
//! ```
//!
//! `context` is the FNV-1a hash of a caller-supplied context string (the
//! serialized experiment config plus anything else that changes cell
//! semantics), so a ledger written by `--quick` can never satisfy a full
//! run. Each subsequent line is one completed attempt:
//!
//! ```json
//! {"cell":"ab12...","label":"oversub=4,policy=FIFO","outcome":"Ok","wall_secs":1.25,"result":{...}}
//! ```
//!
//! A torn final line (the crash case) is tolerated on read and truncated
//! away before appending resumes. Failed attempts are recorded too (for
//! post-mortems) but never loaded — a resume retries them.

use serde::{Deserialize, Serialize, Value};
use simcore::{CellOutcome, MonotonicTimer};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs;
use std::io::{IsTerminal, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// On-disk ledger format version; bumped on incompatible changes.
pub const LEDGER_VERSION: u32 = 1;

/// Environment variable for test-only fault injection: set to
/// `"<sweep>:<index>"` to make that cell panic when it executes. Used by
/// the `scripts/check.sh` resume smoke; has no effect on cells loaded from
/// a ledger (they never execute).
pub const INJECT_PANIC_ENV: &str = "TL_SWEEP_PANIC_AT";

// ---------------------------------------------------------------------------
// SIGINT
// ---------------------------------------------------------------------------

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    // Only async-signal-safe operations here: one atomic store, plus
    // re-arming SIGINT to the default disposition so a second Ctrl-C
    // force-kills a sweep stuck in a hung cell.
    INTERRUPTED.store(true, Ordering::SeqCst);
    unsafe {
        signal(SIGINT, 0); // SIG_DFL
    }
}

#[cfg(unix)]
const SIGINT: i32 = 2;

#[cfg(unix)]
extern "C" {
    // From the C runtime every binary already links; avoids a libc crate
    // dependency for the one call we need.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Install a SIGINT handler that asks running sweeps to stop dispatching
/// new cells. In-flight cells finish and their ledger entries flush before
/// [`run_sweep`] returns, so Ctrl-C is always resumable; a second Ctrl-C
/// restores the default disposition and kills the process. No-op on
/// non-Unix platforms.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

/// True once SIGINT has been received (or [`set_interrupted`] called).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Force the interrupt flag; tests use this to exercise the skip path
/// without delivering a real signal.
#[doc(hidden)]
pub fn set_interrupted(v: bool) {
    INTERRUPTED.store(v, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Hashing and atomic writes
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over `bytes`, rendered as fixed-width hex. Stable across
/// platforms and releases — cell identity is part of the ledger format.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Write `contents` to `path` via a temp file in the same directory,
/// fsync, then atomic rename — a crash mid-write can never leave a torn
/// or truncated artifact at `path`. Creates parent directories.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_all()?;
    drop(f);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Options, records, outcomes
// ---------------------------------------------------------------------------

/// Knobs for one [`run_sweep`] call.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` uses the available core count.
    pub workers: Option<usize>,
    /// Wall-clock budget per cell; a cell past it is abandoned and
    /// recorded as [`CellOutcome::TimedOut`]. `None` disables.
    pub cell_timeout: Option<Duration>,
    /// Stop dispatching new cells once more than this many have failed
    /// (panicked or timed out); the rest are recorded as skipped.
    /// `None` disables the budget.
    pub max_failures: Option<usize>,
    /// Directory for the `<sweep>.cells.jsonl` ledger. `None` runs the
    /// sweep ephemeral (no checkpointing) — the mode unit tests use.
    pub ledger_dir: Option<PathBuf>,
    /// Load completed cells from an existing ledger instead of re-running
    /// them. Without this flag an existing ledger is overwritten.
    pub resume: bool,
    /// Emit a progress/ETA line to stderr as cells complete.
    pub progress: bool,
}

impl SweepOptions {
    /// No ledger, no timeout, default worker count, quiet.
    pub fn ephemeral() -> Self {
        SweepOptions::default()
    }
}

/// What happened to one cell of a sweep, for reports and the ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellRecord {
    /// Stable content hash identifying the cell within its sweep.
    pub cell: String,
    /// Human-readable cell key, e.g. `"oversub=4,policy=FIFO"`.
    pub label: String,
    /// How the attempt ended.
    pub outcome: CellOutcome,
    /// Wall-clock seconds the attempt took (the *original* attempt, for
    /// cells loaded from a ledger).
    pub wall_secs: f64,
    /// True if this cell was loaded from the ledger instead of executed.
    pub from_ledger: bool,
}

/// Everything [`run_sweep`] produced: surviving rows plus the per-cell
/// audit trail the failure report and exit codes are built from.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// Sweep name (ledger file stem).
    pub sweep: String,
    /// Results of cells that completed, in input order.
    pub rows: Vec<R>,
    /// One record per cell, in input order.
    pub cells: Vec<CellRecord>,
    /// The ledger path, when checkpointing was enabled.
    pub ledger_path: Option<PathBuf>,
}

impl<R> SweepOutcome<R> {
    /// Cells that panicked or timed out.
    pub fn failures(&self) -> Vec<&CellRecord> {
        self.cells.iter().filter(|c| c.outcome.is_failure()).collect()
    }

    /// Number of cells never attempted (interrupt / failure budget).
    pub fn skipped(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Skipped))
            .count()
    }

    /// True when every cell completed.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// One formatted line per non-ok cell, for the end-of-run failure
    /// report: `"[sweep] label — outcome"`.
    pub fn failure_lines(&self) -> Vec<String> {
        self.cells
            .iter()
            .filter(|c| !c.outcome.is_ok())
            .map(|c| format!("[{}] {} — {}", self.sweep, c.label, c.outcome))
            .collect()
    }

    /// Panic if any cell failed or was skipped, quoting the first failure.
    /// Library `run()` entry points use this to keep the historical
    /// contract (a broken cell aborts) for tests and benches; `repro`
    /// inspects the outcome instead and degrades gracefully.
    pub fn expect_complete(self) -> Vec<R> {
        if let Some(line) = self.failure_lines().first() {
            panic!("sweep cell failed: {line}");
        }
        self.rows
    }
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

#[derive(Debug, Serialize, Deserialize)]
struct LedgerHeader {
    sweep: String,
    context: String,
    version: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LedgerLine {
    cell: String,
    label: String,
    outcome: CellOutcome,
    wall_secs: f64,
    result: Option<Value>,
}

/// Parse a ledger, tolerating a torn final line. Returns the valid entries
/// in file order; empty when the file is missing or its header does not
/// match `(sweep, context)` (stale ledgers are discarded, not trusted).
fn read_ledger(path: &Path, sweep: &str, context: &str) -> Vec<LedgerLine> {
    let Ok(contents) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = contents.lines();
    let Some(first) = lines.next() else {
        return Vec::new();
    };
    let header: LedgerHeader = match serde_json::from_str(first) {
        Ok(h) => h,
        Err(_) => return Vec::new(),
    };
    if header.sweep != sweep || header.context != context || header.version != LEDGER_VERSION {
        return Vec::new();
    }
    let mut out = Vec::new();
    for line in lines {
        match serde_json::from_str::<LedgerLine>(line) {
            Ok(entry) => out.push(entry),
            // A torn tail is the expected crash artifact; everything
            // before it is intact because appends are line-atomic.
            Err(_) => break,
        }
    }
    out
}

struct LedgerWriter {
    file: fs::File,
}

impl LedgerWriter {
    fn append(&mut self, line: &LedgerLine) {
        let mut text = serde_json::to_string(line).expect("ledger line serializes");
        text.push('\n');
        // Failures to checkpoint must not kill the sweep — the run is
        // still correct, just not resumable past this point.
        if self.file.write_all(text.as_bytes()).is_err() {
            eprintln!("warning: ledger append failed; cell not checkpointed");
            return;
        }
        let _ = self.file.flush();
        let _ = self.file.sync_data();
    }
}

/// Rewrite the ledger to exactly `header` + `entries` (atomic), then open
/// it for appending. This heals torn tails and stale headers in one step.
fn open_ledger(path: &Path, header: &LedgerHeader, entries: &[LedgerLine]) -> Option<LedgerWriter> {
    let mut contents = serde_json::to_string(header).expect("ledger header serializes");
    contents.push('\n');
    for e in entries {
        contents.push_str(&serde_json::to_string(e).expect("ledger line serializes"));
        contents.push('\n');
    }
    if let Err(e) = write_atomic(path, contents.as_bytes()) {
        eprintln!("warning: cannot write sweep ledger {}: {e}", path.display());
        return None;
    }
    match fs::OpenOptions::new().append(true).open(path) {
        Ok(file) => Some(LedgerWriter { file }),
        Err(e) => {
            eprintln!("warning: cannot append to sweep ledger {}: {e}", path.display());
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

struct Progress {
    sweep: String,
    total: usize,
    done: usize,
    failed: usize,
    executed: usize,
    executed_wall: f64,
    workers: usize,
    tty: bool,
}

impl Progress {
    fn report(&mut self, wall_secs: Option<f64>, failed: bool) {
        self.done += 1;
        if failed {
            self.failed += 1;
        }
        if let Some(w) = wall_secs {
            self.executed += 1;
            self.executed_wall += w;
        }
        let remaining = self.total - self.done;
        let eta = if self.executed > 0 && remaining > 0 {
            let per_cell = self.executed_wall / self.executed as f64;
            format!("{:.0}s", per_cell * remaining as f64 / self.workers.max(1) as f64)
        } else {
            "--".to_string()
        };
        let line = format!(
            "[{}] {}/{} cells done, {} failed, {} remaining, ETA {}",
            self.sweep, self.done, self.total, self.failed, remaining, eta
        );
        if self.tty {
            eprint!("\r{line}\x1b[K");
            if remaining == 0 {
                eprintln!();
            }
        } else {
            eprintln!("{line}");
        }
    }
}

// ---------------------------------------------------------------------------
// run_sweep
// ---------------------------------------------------------------------------

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn injected_panic_index(sweep: &str) -> Option<usize> {
    let spec = std::env::var(INJECT_PANIC_ENV).ok()?;
    let (name, idx) = spec.split_once(':')?;
    if name != sweep {
        return None;
    }
    idx.parse().ok()
}

/// Run one cell, honoring the timeout. With a timeout the cell runs on a
/// detached thread and is *abandoned* (the thread keeps spinning until
/// process exit) when the deadline passes — the only portable way to bound
/// a hung computation without killing the process.
fn execute_cell<C, R, F>(
    f: &Arc<F>,
    idx: usize,
    cell: C,
    inject: Option<usize>,
    timeout: Option<Duration>,
) -> Result<R, CellOutcome>
where
    C: Send + 'static,
    R: Send + 'static,
    F: Fn(C) -> R + Send + Sync + 'static,
{
    let body = {
        let f = Arc::clone(f);
        move || {
            if inject == Some(idx) {
                panic!("injected test fault ({INJECT_PANIC_ENV}) in cell {idx}");
            }
            f(cell)
        }
    };
    match timeout {
        None => catch_unwind(AssertUnwindSafe(body))
            .map_err(|p| CellOutcome::Panicked { msg: panic_message(p) }),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            std::thread::Builder::new()
                .name(format!("sweep-cell-{idx}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(body)).map_err(panic_message);
                    let _ = tx.send(result);
                })
                .expect("spawn sweep cell thread");
            match rx.recv_timeout(limit) {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(msg)) => Err(CellOutcome::Panicked { msg }),
                Err(_) => Err(CellOutcome::TimedOut),
            }
        }
    }
}

/// Execute a sweep through the orchestrator.
///
/// * `sweep` — stable name; the ledger file is `<dir>/<sweep>.cells.jsonl`.
/// * `context` — everything that changes cell semantics beyond the cell key
///   (serialized config, iteration counts, …); hashed into cell identity so
///   mismatched ledgers are discarded rather than trusted.
/// * `cells` — the grid, in deterministic order (results merge by index).
/// * `key` — stable human-readable identity of one cell *within* the
///   context; hashed with the context into the cell id. Keys must be
///   unique.
/// * `f` — executes one cell. Panics are caught per cell.
pub fn run_sweep<C, R, F>(
    sweep: &str,
    context: &str,
    opts: &SweepOptions,
    cells: Vec<C>,
    key: impl Fn(&C) -> String,
    f: F,
) -> SweepOutcome<R>
where
    C: Send + 'static,
    R: Serialize + Deserialize + Send + 'static,
    F: Fn(C) -> R + Send + Sync + 'static,
{
    let context_hash = content_hash(format!("{sweep}\u{0}{context}").as_bytes());
    let labels: Vec<String> = cells.iter().map(&key).collect();
    let ids: Vec<String> = labels
        .iter()
        .map(|l| content_hash(format!("{context_hash}\u{0}{l}").as_bytes()))
        .collect();
    {
        let mut seen = HashSet::new();
        for (label, id) in labels.iter().zip(&ids) {
            assert!(seen.insert(id.clone()), "duplicate sweep cell key: {label}");
        }
    }

    let total = cells.len();
    let ledger_path = opts
        .ledger_dir
        .as_ref()
        .map(|d| d.join(format!("{sweep}.cells.jsonl")));

    // Resume: load valid prior entries, keep only usable Ok results.
    let mut prior: Vec<LedgerLine> = Vec::new();
    if let (Some(path), true) = (&ledger_path, opts.resume) {
        prior = read_ledger(path, sweep, &context_hash);
    }
    let mut loaded: HashMap<String, LedgerLine> = HashMap::new();
    for line in &prior {
        if line.outcome.is_ok() && line.result.is_some() {
            // Last entry wins if a cell somehow appears twice.
            loaded.insert(line.cell.clone(), line.clone());
        }
    }

    let ledger = ledger_path.as_ref().and_then(|path| {
        let header = LedgerHeader {
            sweep: sweep.to_string(),
            context: context_hash.clone(),
            version: LEDGER_VERSION,
        };
        open_ledger(path, &header, &prior).map(Mutex::new)
    });

    // Slot in resumed results; queue the rest.
    let mut row_slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut record_slots: Vec<Option<CellRecord>> = (0..total).map(|_| None).collect();
    let mut pending: VecDeque<(usize, C)> = VecDeque::new();
    let mut resumed = 0usize;
    for (idx, cell) in cells.into_iter().enumerate() {
        if let Some(entry) = loaded.get(&ids[idx]) {
            match R::from_value(entry.result.as_ref().expect("ok entries carry a result")) {
                Ok(row) => {
                    row_slots[idx] = Some(row);
                    record_slots[idx] = Some(CellRecord {
                        cell: ids[idx].clone(),
                        label: labels[idx].clone(),
                        outcome: CellOutcome::Ok,
                        wall_secs: entry.wall_secs,
                        from_ledger: true,
                    });
                    resumed += 1;
                    continue;
                }
                Err(e) => {
                    eprintln!(
                        "warning: ledger entry for cell {} does not decode ({e:?}); re-running",
                        labels[idx]
                    );
                }
            }
        }
        pending.push_back((idx, cell));
    }

    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        })
        .max(1)
        .min(pending.len().max(1));

    let progress = opts.progress.then(|| {
        let mut p = Progress {
            sweep: sweep.to_string(),
            total,
            done: 0,
            failed: 0,
            executed: 0,
            executed_wall: 0.0,
            workers,
            tty: std::io::stderr().is_terminal(),
        };
        if resumed > 0 {
            eprintln!("[{sweep}] resumed {resumed}/{total} cells from ledger");
            p.done = resumed;
        }
        Mutex::new(p)
    });

    let inject = injected_panic_index(sweep);
    let f = Arc::new(f);
    let queue = Mutex::new(pending);
    let failures = std::sync::atomic::AtomicUsize::new(0);
    let done = Mutex::new(Vec::<(usize, Option<R>, CellRecord)>::new());

    std::thread::scope(|s| {
        for _ in 0..workers {
            let queue = &queue;
            let failures = &failures;
            let done = &done;
            let ledger = &ledger;
            let progress = &progress;
            let ids = &ids;
            let labels = &labels;
            let f = Arc::clone(&f);
            let timeout = opts.cell_timeout;
            let max_failures = opts.max_failures;
            s.spawn(move || loop {
                if interrupted() {
                    return;
                }
                if let Some(max) = max_failures {
                    if failures.load(Ordering::SeqCst) > max {
                        return;
                    }
                }
                let Some((idx, cell)) = queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front()
                else {
                    return;
                };
                let timer = MonotonicTimer::start();
                let result = execute_cell(&f, idx, cell, inject, timeout);
                let wall_secs = timer.elapsed_secs();
                let (outcome, row, value) = match result {
                    Ok(row) => {
                        let value = ledger.is_some().then(|| row.to_value());
                        (CellOutcome::Ok, Some(row), value)
                    }
                    Err(outcome) => {
                        failures.fetch_add(1, Ordering::SeqCst);
                        (outcome, None, None)
                    }
                };
                if let Some(ledger) = ledger {
                    ledger.lock().unwrap_or_else(|e| e.into_inner()).append(&LedgerLine {
                        cell: ids[idx].clone(),
                        label: labels[idx].clone(),
                        outcome: outcome.clone(),
                        wall_secs,
                        result: value,
                    });
                }
                if let Some(p) = progress {
                    p.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .report(Some(wall_secs), !outcome.is_ok());
                }
                let record = CellRecord {
                    cell: ids[idx].clone(),
                    label: labels[idx].clone(),
                    outcome,
                    wall_secs,
                    from_ledger: false,
                };
                done.lock().unwrap_or_else(|e| e.into_inner()).push((idx, row, record));
            });
        }
    });

    for (idx, row, record) in done.into_inner().unwrap_or_else(|e| e.into_inner()) {
        row_slots[idx] = row;
        record_slots[idx] = Some(record);
    }
    // Anything left in the queue was never attempted.
    for (idx, _) in queue.into_inner().unwrap_or_else(|e| e.into_inner()) {
        record_slots[idx] = Some(CellRecord {
            cell: ids[idx].clone(),
            label: labels[idx].clone(),
            outcome: CellOutcome::Skipped,
            wall_secs: 0.0,
            from_ledger: false,
        });
    }

    let rows = row_slots.into_iter().flatten().collect();
    let cells = record_slots
        .into_iter()
        .map(|r| r.expect("every cell has a record"))
        .collect();
    SweepOutcome {
        sweep: sweep.to_string(),
        rows,
        cells,
        ledger_path,
    }
}

/// Run one non-sweep unit of work (a figure, table, or ablation) with the
/// same isolation contract as a sweep cell: panics are caught and recorded
/// instead of aborting the run, and a pending interrupt skips the work.
/// No timeout — the closure need not be `'static`.
pub fn run_isolated<T>(name: &str, f: impl FnOnce() -> T) -> (Option<T>, CellRecord) {
    let id = content_hash(name.as_bytes());
    if interrupted() {
        return (
            None,
            CellRecord {
                cell: id,
                label: name.to_string(),
                outcome: CellOutcome::Skipped,
                wall_secs: 0.0,
                from_ledger: false,
            },
        );
    }
    let timer = MonotonicTimer::start();
    let result = catch_unwind(AssertUnwindSafe(f));
    let wall_secs = timer.elapsed_secs();
    match result {
        Ok(value) => (
            Some(value),
            CellRecord {
                cell: id,
                label: name.to_string(),
                outcome: CellOutcome::Ok,
                wall_secs,
                from_ledger: false,
            },
        ),
        Err(payload) => (
            None,
            CellRecord {
                cell: id,
                label: name.to_string(),
                outcome: CellOutcome::Panicked { msg: panic_message(payload) },
                wall_secs,
                from_ledger: false,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable() {
        // Fixed vectors: the hash is part of the on-disk ledger format.
        assert_eq!(content_hash(b""), "cbf29ce484222325");
        assert_eq!(content_hash(b"a"), "af63dc4c8601ec8c");
        assert_ne!(content_hash(b"scale"), content_hash(b"fabric"));
    }

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("tl-orch-wa-{}", std::process::id()));
        let path = dir.join("nested/out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ephemeral_sweep_isolates_panics_and_keeps_order() {
        let out: SweepOutcome<i64> = run_sweep(
            "unit-panic",
            "ctx",
            &SweepOptions::ephemeral(),
            (0..8).collect(),
            |c| format!("cell={c}"),
            |c: i64| {
                if c == 3 {
                    panic!("cell three exploded");
                }
                c * 10
            },
        );
        assert_eq!(out.rows, vec![0, 10, 20, 40, 50, 60, 70]);
        assert_eq!(out.cells.len(), 8);
        assert!(matches!(out.cells[3].outcome, CellOutcome::Panicked { .. }));
        assert!(out.cells.iter().enumerate().all(|(i, c)| i == 3 || c.outcome.is_ok()));
        let lines = out.failure_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("cell three exploded"), "{lines:?}");
    }

    #[test]
    fn timeout_abandons_hung_cell_and_finishes_siblings() {
        let opts = SweepOptions {
            cell_timeout: Some(Duration::from_millis(50)),
            workers: Some(2),
            ..SweepOptions::default()
        };
        let out: SweepOutcome<u32> = run_sweep(
            "unit-timeout",
            "ctx",
            &opts,
            vec![0u32, 1, 2, 3],
            |c| format!("cell={c}"),
            |c: u32| {
                if c == 1 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                c
            },
        );
        assert_eq!(out.rows, vec![0, 2, 3]);
        assert!(matches!(out.cells[1].outcome, CellOutcome::TimedOut));
        assert_eq!(out.failures().len(), 1);
    }

    #[test]
    fn max_failures_skips_remaining_cells() {
        let opts = SweepOptions {
            workers: Some(1),
            max_failures: Some(0),
            ..SweepOptions::default()
        };
        let out: SweepOutcome<u32> = run_sweep(
            "unit-budget",
            "ctx",
            &opts,
            (0..6).collect(),
            |c| format!("cell={c}"),
            |c: u32| {
                if c == 2 {
                    panic!("budget breaker");
                }
                c
            },
        );
        assert_eq!(out.rows, vec![0, 1]);
        assert_eq!(out.skipped(), 3, "cells after the failure are skipped: {:?}", out.cells);
        assert!(!out.all_ok());
    }

    #[test]
    fn expect_complete_panics_on_failure() {
        let out: SweepOutcome<u32> = run_sweep(
            "unit-expect",
            "ctx",
            &SweepOptions::ephemeral(),
            vec![0u32, 1],
            |c| format!("cell={c}"),
            |c: u32| {
                if c == 1 {
                    panic!("nope");
                }
                c
            },
        );
        let err = catch_unwind(AssertUnwindSafe(|| out.expect_complete()))
            .expect_err("must re-raise");
        assert!(panic_message(err).contains("nope"));
    }

    #[test]
    fn run_isolated_catches_and_labels() {
        let (ok, rec) = run_isolated("unit-iso-ok", || 42);
        assert_eq!(ok, Some(42));
        assert!(rec.outcome.is_ok());
        let (none, rec): (Option<()>, _) = run_isolated("unit-iso-bad", || panic!("iso boom"));
        assert!(none.is_none());
        assert!(matches!(&rec.outcome, CellOutcome::Panicked { msg } if msg.contains("iso boom")));
    }
}
