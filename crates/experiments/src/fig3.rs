//! Figure 3 — distribution of barrier wait time under placements #1 and #8
//! (FIFO).
//!
//! Paper: "the average wait time under placement #1 ... is 3.71× of that
//! under placement #8", and "the variance of barrier wait time under
//! placement #1 is 4.37× of that under placement #8".

use crate::config::ExperimentConfig;
use crate::report::{ratio, Table};
use crate::runner::{parallel_map, run_table1, PolicyKind};
use serde::Serialize;
use simcore::SampleSet;
use tl_cluster::Table1Index;

/// Barrier-wait distributions for one placement.
#[derive(Debug, Serialize)]
pub struct Fig3Side {
    /// Table I index.
    pub index: u8,
    /// CDF of per-barrier mean waits (seconds).
    pub cdf_mean: Vec<(f64, f64)>,
    /// CDF of per-barrier wait variances (seconds²).
    pub cdf_var: Vec<(f64, f64)>,
    /// Grand mean of per-barrier means.
    pub mean_of_means: f64,
    /// Grand mean of per-barrier variances.
    pub mean_of_vars: f64,
}

/// The full figure: the two placements plus their ratios.
#[derive(Debug, Serialize)]
pub struct Fig3 {
    /// Placement #1 (heavy contention).
    pub heavy: Fig3Side,
    /// Placement #8 (mild contention).
    pub mild: Fig3Side,
    /// Ratio of average barrier wait, heavy/mild (paper: 3.71×).
    pub mean_ratio: f64,
    /// Ratio of average wait variance, heavy/mild (paper: 4.37×).
    pub var_ratio: f64,
}

fn collect_side(cfg: &ExperimentConfig, idx: Table1Index, cdf_points: usize) -> Fig3Side {
    let out = run_table1(cfg, idx, PolicyKind::Fifo);
    assert!(out.all_complete());
    let mut means = SampleSet::new();
    let mut vars = SampleSet::new();
    for j in &out.jobs {
        means.extend_from(&j.barrier_means);
        vars.extend_from(&j.barrier_vars);
    }
    Fig3Side {
        index: idx.0,
        mean_of_means: means.mean(),
        mean_of_vars: vars.mean(),
        cdf_mean: means.cdf(cdf_points),
        cdf_var: vars.cdf(cdf_points),
    }
}

/// Run Figure 3.
pub fn run(cfg: &ExperimentConfig) -> Fig3 {
    let mut sides = parallel_map(vec![Table1Index(1), Table1Index(8)], |idx| {
        collect_side(cfg, idx, 64)
    });
    let mild = sides.pop().expect("two sides");
    let heavy = sides.pop().expect("two sides");
    Fig3 {
        mean_ratio: heavy.mean_of_means / mild.mean_of_means,
        var_ratio: heavy.mean_of_vars / mild.mean_of_vars,
        heavy,
        mild,
    }
}

impl Fig3 {
    /// Paper-style quantile table (a compact view of the CDFs).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3: barrier wait time distributions under FIFO",
            &["Placement", "mean wait (s)", "mean variance (s^2)"],
        );
        for side in [&self.heavy, &self.mild] {
            t.push_row(vec![
                format!("#{}", side.index),
                format!("{:.3}", side.mean_of_means),
                format!("{:.5}", side.mean_of_vars),
            ]);
        }
        t
    }

    /// Summary vs the paper's headline ratios.
    pub fn summary(&self) -> String {
        format!(
            "avg wait #1/#8: {} [paper: 3.71x]; wait variance #1/#8: {} [paper: 4.37x]",
            ratio(self.mean_ratio),
            ratio(self.var_ratio)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_inflates_wait_and_variance() {
        let cfg = ExperimentConfig::quick();
        let f = run(&cfg);
        assert!(f.mean_ratio > 1.5, "mean ratio {}", f.mean_ratio);
        assert!(f.var_ratio > 1.5, "var ratio {}", f.var_ratio);
        assert_eq!(f.heavy.index, 1);
        assert_eq!(f.mild.index, 8);
        // CDFs are monotone and end at 1.
        for cdf in [&f.heavy.cdf_mean, &f.mild.cdf_var] {
            assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        assert!(f.summary().contains("3.71x"));
        assert!(f.table().render().contains("#1"));
    }
}
