//! `repro` — regenerate every table and figure of the TensorLights paper.
//!
//! Usage:
//!
//! ```text
//! repro [--experiment all|table1|fig2|fig3|fig4|fig5a|fig5b|fig6|table2|ablations|faults|perf|validate|scale|fabric|explain]
//!       [--iterations N] [--full] [--quick] [--seed S] [--csv DIR] [--json DIR]
//!       [--topology SPEC] [--pattern NAME] [--profile]
//!       [--resume] [--ledger-dir DIR] [--cell-timeout SECS] [--max-failures N]
//!       [--trace-out PATH] [--metrics-out PATH] [--check-trace PATH]
//! ```
//!
//! `--full` runs at the paper's 1500 iterations (slow); the default is the
//! scaled 300-iteration configuration, which preserves every result's shape.
//!
//! Every sweep (`scale`, `fabric`, `validate`, `faults`, `explain`) runs
//! through the crash-safe orchestrator (DESIGN.md §9): each cell executes
//! in isolation, failures are recorded rather than aborting the run, and
//! when a ledger directory is available (`--ledger-dir`, defaulting to
//! `--json`) completed cells stream to an append-only
//! `<sweep>.cells.jsonl` checkpoint. `--resume` loads that ledger and
//! re-runs only the missing or failed cells; the merged output is
//! byte-identical to an uninterrupted run. Figures, tables, and ablations
//! are likewise isolated so one panic cannot take down the rest of the
//! report.
//!
//! `--trace-out` writes structured telemetry from experiments that produce
//! it (`fig4`, `perf`): a Chrome `trace_event` JSON document loadable in
//! Perfetto / `chrome://tracing`, or a JSONL event log when the path ends
//! in `.jsonl`. `--metrics-out` writes the sampled metrics timeseries
//! (`perf` only). `--check-trace` validates a previously written Chrome
//! trace and exits (0 valid, 2 invalid).
//!
//! Exit codes: `0` everything completed; `2` usage error (unknown
//! argument/experiment, bad value, invalid trace); `3` differential
//! validation diverged; `4` one or more cells failed or were skipped —
//! reported per cell after the run drains; `130` interrupted (SIGINT),
//! after flushing in-flight ledger entries.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use tl_cluster::Table1Index;
use tl_experiments::ablations::{
    async_mode, bands, churn, fabric, fairness, jitter, model_size, ordering, ps_aware, qdisc,
    rate_control, rotation, sharded_ps, slow_host, timeline,
};
use tl_experiments::report::Table;
use tl_experiments::{
    config::ExperimentConfig, fabric as fabric_sweep, faults, fig2, fig3, fig4, fig5, fig6,
    install_sigint_handler, interrupted, run_isolated, table1, table2, validate, write_atomic,
    CellRecord, SweepOptions,
};

struct Args {
    experiment: String,
    cfg: ExperimentConfig,
    quick: bool,
    xl: bool,
    profile: bool,
    csv_dir: Option<PathBuf>,
    json_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    markdown: std::cell::RefCell<Option<(PathBuf, String)>>,
    ledger_dir: Option<PathBuf>,
    resume: bool,
    cell_timeout: Option<Duration>,
    max_failures: Option<usize>,
}

impl Args {
    /// Orchestrator options shared by every sweep this invocation runs.
    fn sweep_opts(&self) -> SweepOptions {
        SweepOptions {
            workers: None,
            cell_timeout: self.cell_timeout,
            max_failures: self.max_failures,
            ledger_dir: self.ledger_dir.clone(),
            resume: self.resume,
            progress: true,
        }
    }
}

/// Bad invocation: complain on stderr and exit 2 (usage error).
fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg} (see --help)");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut cfg = ExperimentConfig::default();
    let mut quick = false;
    let mut xl = false;
    let mut profile = false;
    let mut csv_dir = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut markdown: Option<PathBuf> = None;
    let mut topology: Option<tl_dl::TopologySpec> = None;
    let mut pattern: Option<tl_dl::TrafficPattern> = None;
    let mut kernel: Option<tl_dl::AllocKernel> = None;
    let mut ledger_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut cell_timeout = None;
    let mut max_failures = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            match argv.get(*i) {
                Some(v) => v.clone(),
                None => usage_error(&format!("missing value after {}", argv[*i - 1])),
            }
        };
        match argv[i].as_str() {
            "--experiment" | "-e" => experiment = next(&mut i),
            "--iterations" | "-i" => {
                let v = next(&mut i);
                cfg = ExperimentConfig::scaled(
                    v.parse()
                        .unwrap_or_else(|_| usage_error(&format!("bad --iterations value {v:?}"))),
                )
            }
            "--full" => cfg = ExperimentConfig::full(),
            "--quick" => quick = true,
            "--xl" => xl = true,
            "--profile" => profile = true,
            "--seed" | "-s" => {
                let v = next(&mut i);
                cfg.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad --seed value {v:?}")));
            }
            "--topology" => {
                let v = next(&mut i);
                let t = v.parse::<tl_dl::TopologySpec>();
                topology = Some(t.unwrap_or_else(|e| usage_error(&e.to_string())));
            }
            "--pattern" => {
                let v = next(&mut i);
                let p = v.parse::<tl_dl::TrafficPattern>();
                pattern = Some(p.unwrap_or_else(|e| usage_error(&e.to_string())));
            }
            "--kernel" => {
                let v = next(&mut i);
                kernel = Some(tl_dl::AllocKernel::parse(&v).unwrap_or_else(|| {
                    usage_error(&format!(
                        "bad --kernel value {v:?} (expected legacy or bottleneck)"
                    ))
                }));
            }
            "--csv" => csv_dir = Some(PathBuf::from(next(&mut i))),
            "--json" => json_dir = Some(PathBuf::from(next(&mut i))),
            "--ledger-dir" => ledger_dir = Some(PathBuf::from(next(&mut i))),
            "--resume" => resume = true,
            "--cell-timeout" => {
                let v = next(&mut i);
                let secs: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad --cell-timeout value {v:?}")));
                if !secs.is_finite() || secs <= 0.0 {
                    usage_error(&format!("--cell-timeout must be positive seconds, got {v:?}"));
                }
                cell_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--max-failures" => {
                let v = next(&mut i);
                max_failures = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_error(&format!("bad --max-failures value {v:?}"))),
                );
            }
            "--trace-out" => trace_out = Some(PathBuf::from(next(&mut i))),
            "--metrics-out" => metrics_out = Some(PathBuf::from(next(&mut i))),
            "--check-trace" => {
                let code = check_trace(&PathBuf::from(next(&mut i)));
                std::process::exit(code);
            }
            "--markdown" => markdown = Some(PathBuf::from(next(&mut i))),
            "--help" | "-h" => {
                println!(
                    "repro — regenerate the TensorLights paper's tables and figures\n\
                     \n\
                     --experiment all|table1|fig2|fig3|fig4|fig5a|fig5b|fig6|table2|ablations|faults|perf|validate|scale|fabric|explain\n\
                     --iterations N   scaled iteration count (default 300)\n\
                     --full           paper scale (1500 iterations)\n\
                     --quick          scale/fabric/explain: smoke-sized run\n\
                     --xl             scale: the 10 000-host x 5 000-job cell instead of the grid\n\
                     --profile        self-profile the simulator (per-subsystem wall time)\n\
                     --seed S         master seed\n\
                     --topology SPEC  single-switch (default) or leaf-spine:<racks>x<hosts>[@<oversub>]\n\
                     --pattern NAME   ps-star (default), ring, or hierarchical\n\
                     --kernel NAME    max-min kernel: bottleneck (default) or legacy;\n\
                     \x20                    bitwise-identical output, wall time only\n\
                     --csv DIR        also write each table as CSV\n\
                     --json DIR       also write each result as JSON\n\
                     --ledger-dir DIR sweep checkpoint ledgers (default: the --json DIR)\n\
                     --resume         load completed cells from the ledger; re-run only the rest\n\
                     --cell-timeout S abandon a sweep cell after S wall-clock seconds\n\
                     --max-failures N stop dispatching cells after N failures; skip the rest\n\
                     --trace-out PATH     write telemetry as Chrome trace_event JSON (Perfetto);\n\
                     \x20                    .jsonl extension switches to a JSONL event log\n\
                     --metrics-out PATH   write sampled metrics timeseries JSON (perf)\n\
                     --check-trace PATH   validate a Chrome trace file and exit (0 ok, 2 bad)\n\
                     --markdown FILE  also write all tables as one markdown report\n\
                     \n\
                     exit codes: 0 ok; 2 usage error; 3 validation divergence;\n\
                     4 sweep cells failed or were skipped (reported after the run\n\
                     drains); 130 interrupted (checkpoints flushed first)"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    // Applied after the loop so `--iterations`/`--full` (which rebuild the
    // config) cannot clobber an earlier `--topology`/`--pattern`.
    if let Some(t) = topology {
        cfg.topology = t;
    }
    if let Some(p) = pattern {
        cfg.pattern = p;
    }
    if let Some(k) = kernel {
        cfg.alloc_kernel = Some(k);
    }
    // The ledger rides with the JSON output unless placed explicitly.
    let ledger_dir = ledger_dir.or_else(|| json_dir.clone());
    if resume && ledger_dir.is_none() {
        usage_error("--resume needs a ledger directory (--json DIR or --ledger-dir DIR)");
    }
    Args {
        experiment,
        cfg,
        quick,
        xl,
        profile,
        csv_dir,
        json_dir,
        trace_out,
        metrics_out,
        markdown: std::cell::RefCell::new(markdown.map(|p| (p, String::new()))),
        ledger_dir,
        resume,
        cell_timeout,
        max_failures,
    }
}

/// Validate a Chrome `trace_event` file without external tooling: it must
/// parse as JSON, hold a non-empty `traceEvents` array, and contain the
/// metadata ("M"), span ("X"), and instant ("i") phases the exporter emits.
/// Returns the process exit code (0 valid, 2 invalid).
fn check_trace(path: &std::path::Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-trace: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let doc: serde::Value = match serde_json::from_str_value(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check-trace: {} is not valid JSON: {e}", path.display());
            return 2;
        }
    };
    let events = match doc.get("traceEvents") {
        Some(serde::Value::Array(evs)) if !evs.is_empty() => evs,
        _ => {
            eprintln!(
                "check-trace: {} has no non-empty traceEvents array",
                path.display()
            );
            return 2;
        }
    };
    for required in ["M", "X", "i"] {
        let found = events.iter().any(|e| {
            matches!(e.get("ph"), Some(serde::Value::Str(ph)) if ph == required)
        });
        if !found {
            eprintln!(
                "check-trace: {} contains no ph={required:?} event",
                path.display()
            );
            return 2;
        }
    }
    println!(
        "check-trace: {} ok ({} trace events)",
        path.display(),
        events.len()
    );
    0
}

fn emit(args: &Args, name: &str, table: &Table, summary: Option<String>, json: String) {
    println!("{}", table.render());
    if let Some(s) = &summary {
        println!("{s}\n");
    }
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        write_atomic(&dir.join(format!("{name}.csv")), table.to_csv().as_bytes())
            .expect("write csv");
    }
    if let Some(dir) = &args.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        write_atomic(&dir.join(format!("{name}.json")), json.as_bytes()).expect("write json");
    }
    if let Some((_, body)) = args.markdown.borrow_mut().as_mut() {
        body.push_str(&table.to_markdown());
        if let Some(s) = &summary {
            body.push_str(&format!("{s}\n\n"));
        }
    }
}

/// Write `events` to `path`: JSONL if the extension is `.jsonl`, Chrome
/// `trace_event` JSON otherwise.
fn write_events(path: &std::path::Path, events: &[tl_telemetry::TimedEvent]) {
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let body = if jsonl {
        tl_telemetry::export::events_to_jsonl(events)
    } else {
        tl_telemetry::export::chrome_trace(events)
    };
    write_atomic(path, body.as_bytes()).expect("write trace");
    println!(
        "telemetry: {} events written to {} ({})",
        events.len(),
        path.display(),
        if jsonl { "JSONL" } else { "Chrome trace_event" }
    );
}

/// Append `[scope] label — outcome` lines for every cell that did not
/// finish cleanly; these become the post-drain failure report.
fn collect_failures(failures: &mut Vec<String>, scope: &str, records: &[CellRecord]) {
    for rec in records {
        if !rec.outcome.is_ok() {
            failures.push(format!("[{scope}] {} — {}", rec.label, rec.outcome));
        }
    }
}

fn main() {
    install_sigint_handler();
    let args = parse_args();
    let cfg = &args.cfg;
    let wanted = |name: &str| args.experiment == "all" || args.experiment == name;
    let mut ran = 0;
    let t0 = std::time::Instant::now();
    let mut summaries: BTreeMap<&'static str, String> = BTreeMap::new();
    let mut failures: Vec<String> = Vec::new();
    let mut validation_failed = false;

    /// Run one report block under panic isolation: a figure or ablation
    /// that dies is recorded in the failure report instead of aborting
    /// everything after it.
    macro_rules! isolated {
        ($name:expr, $body:block) => {{
            let (_, rec) = run_isolated($name, || $body);
            if !rec.outcome.is_ok() {
                failures.push(format!("[repro] {} — {}", rec.label, rec.outcome));
            }
        }};
    }

    println!(
        "TensorLights reproduction — {} iterations/job, seed {}\n",
        cfg.iterations, cfg.seed
    );

    if wanted("table1") {
        isolated!("table1", {
            let r = table1::run();
            emit(
                &args,
                "table1",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r.table()).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("fig2") {
        isolated!("fig2", {
            let r = fig2::run(cfg, &Table1Index::all());
            summaries.insert("fig2", r.summary());
            let bars: Vec<(String, f64)> = r
                .rows
                .iter()
                .map(|row| (format!("#{}", row.index), row.mean_jct))
                .collect();
            let chart = tl_experiments::charts::bar_chart("mean JCT by placement (s)", &bars, 48);
            emit(
                &args,
                "fig2",
                &r.table(),
                Some(format!("{chart}\n{}", r.summary())),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("fig3") {
        isolated!("fig3", {
            let r = fig3::run(cfg);
            summaries.insert("fig3", r.summary());
            let chart = tl_experiments::charts::cdf_chart(
                "CDF of per-barrier mean wait (s)",
                &[("#1", &r.heavy.cdf_mean), ("#8", &r.mild.cdf_mean)],
                56,
                12,
            );
            emit(
                &args,
                "fig3",
                &r.table(),
                Some(format!("{chart}\n{}", r.summary())),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("fig4") {
        isolated!("fig4", {
            let fig_cfg = fig4::Fig4Config::default();
            let r = fig4::run(&fig_cfg);
            emit(
                &args,
                "fig4",
                &r.table(),
                Some(r.ascii.clone()),
                serde_json::to_string_pretty(&r).expect("json"),
            );
            if let Some(path) = &args.trace_out {
                let events = fig4::telemetry_events(&fig_cfg);
                write_events(path, &events);
            }
        });
        ran += 1;
    }
    if wanted("fig5a") {
        isolated!("fig5a", {
            let r = fig5::run_5a(cfg, &Table1Index::all());
            summaries.insert("fig5a", r.summary());
            emit(
                &args,
                "fig5a",
                &r.table(),
                Some(r.summary()),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("fig5b") {
        isolated!("fig5b", {
            let r = fig5::run_5b(cfg, &[1, 2, 4, 8, 16, 32]);
            summaries.insert("fig5b", r.summary());
            emit(
                &args,
                "fig5b",
                &r.table(),
                Some(r.summary()),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("fig6") {
        isolated!("fig6", {
            let r = fig6::run(cfg);
            summaries.insert("fig6", r.summary());
            let chart = tl_experiments::charts::cdf_chart(
                "CDF of per-barrier wait variance (s^2), placement #1",
                &[
                    (r.sides[0].label, &r.sides[0].cdf_var),
                    (r.sides[1].label, &r.sides[1].cdf_var),
                    (r.sides[2].label, &r.sides[2].cdf_var),
                ],
                56,
                12,
            );
            emit(
                &args,
                "fig6",
                &r.table(),
                Some(format!("{chart}\n{}", r.summary())),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }
    if wanted("table2") {
        isolated!("table2", {
            let r = table2::run(cfg, Table1Index(1));
            summaries.insert("table2", r.summary());
            emit(
                &args,
                "table2",
                &r.table(),
                Some(r.summary()),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });
        ran += 1;
    }

    if args.experiment == "faults" {
        // Robustness extension (not a paper figure): JCT under injected
        // host/NIC/PS/control-plane faults, both barrier-loss policies.
        use tl_dl::BarrierLossPolicy;
        let intensities = [0.0, 0.5, 1.0, 2.0];
        for loss in [
            BarrierLossPolicy::StallUntilRecovery,
            BarrierLossPolicy::DropAndContinue,
        ] {
            let name = match loss {
                BarrierLossPolicy::StallUntilRecovery => "faults_stall",
                BarrierLossPolicy::DropAndContinue => "faults_drop",
            };
            isolated!(name, {
                let (r, records) = faults::run_with(cfg, &intensities, loss, &args.sweep_opts());
                collect_failures(&mut failures, name, &records);
                for row in &r.rows {
                    if row.completed != 21 {
                        failures.push(format!(
                            "[{name}] intensity={},policy={} — only {} of 21 jobs completed",
                            row.intensity, row.policy, row.completed
                        ));
                    }
                }
                if r.rows.is_empty() {
                    eprintln!("{name}: no cells completed; skipping report");
                } else {
                    summaries.insert(name, r.summary());
                    emit(
                        &args,
                        name,
                        &r.table(),
                        Some(r.summary()),
                        serde_json::to_string_pretty(&r).expect("json"),
                    );
                }
            });
        }
        if let Some(path) = &args.trace_out {
            let events = faults::telemetry_events(cfg, 2.0, BarrierLossPolicy::DropAndContinue);
            write_events(path, &events);
        }
        ran += 1;
    }

    if args.experiment == "validate" {
        // Differential validation (not a paper figure): every scenario of
        // the seeded matrix runs through the full DL engine on both the
        // fluid and the packet network backend with invariant checks on;
        // any divergence beyond tolerance or invariant violation fails
        // the process (exit 3, raised only after everything else drains).
        isolated!("validate", {
            let (r, records) = validate::run_with(cfg, &args.sweep_opts());
            collect_failures(&mut failures, "validate", &records);
            if r.rows.is_empty() {
                eprintln!("validate: no scenarios completed; skipping report");
                validation_failed = true;
            } else {
                summaries.insert("validate", r.summary());
                emit(
                    &args,
                    "validate",
                    &r.table(),
                    Some(r.summary()),
                    serde_json::to_string_pretty(&r).expect("json"),
                );
                if let Some(path) = &args.trace_out {
                    write_events(path, &r.mark_events());
                }
                if !r.passed() {
                    validation_failed = true;
                }
            }
        });
        ran += 1;
    }

    if args.experiment == "scale" {
        // Scale-out engine throughput sweep (not a paper figure): the
        // (hosts x jobs) grid up to 500 hosts / 200 jobs under all three
        // policies, reporting wall-clock, events and allocator counters
        // per cell. `--quick` runs only the smallest cell (smoke run).
        use tl_experiments::scale;
        isolated!("scale", {
            let (r, records) = if args.xl {
                // The single 10 000-host x 5 000-job cell (all three
                // policies); run_xl panics unless every job completes.
                (scale::run_xl(cfg), Vec::new())
            } else {
                scale::run_with(cfg, args.quick, &args.sweep_opts())
            };
            collect_failures(&mut failures, "scale", &records);
            for row in &r.rows {
                if row.completed as u32 != row.jobs {
                    failures.push(format!(
                        "[scale] hosts={},jobs={},policy={} — incomplete: {}/{} jobs",
                        row.hosts, row.jobs, row.policy, row.completed, row.jobs
                    ));
                }
            }
            if r.rows.is_empty() {
                eprintln!("scale: no cells completed; skipping report");
            } else {
                summaries.insert("scale", r.summary());
                emit(
                    &args,
                    "scale",
                    &r.table(),
                    Some(r.summary()),
                    serde_json::to_string_pretty(&r).expect("json"),
                );
                // Deterministic projection (wall-clock columns stripped,
                // floats as bit patterns): byte-identical across runs and
                // across TL_WORKERS settings; check.sh compares it.
                if let Some(dir) = &args.json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    write_atomic(
                        &dir.join("scale.canonical.json"),
                        r.canonical_json().as_bytes(),
                    )
                    .expect("write canonical json");
                }
            }
        });
        ran += 1;
    }

    if args.experiment == "fabric" {
        // Multi-link fabric sweep (not a paper figure): the cross-rack
        // workload under policy x oversubscription x traffic pattern on a
        // 3-rack leaf-spine topology. Every cell must complete all jobs.
        isolated!("fabric", {
            let (r, records) = fabric_sweep::run_with(cfg, args.quick, &args.sweep_opts());
            collect_failures(&mut failures, "fabric", &records);
            for row in &r.rows {
                if row.completed as u32 != row.jobs {
                    failures.push(format!(
                        "[fabric] oversub={},pattern={},policy={} — incomplete: {}/{} jobs",
                        row.oversub, row.pattern, row.policy, row.completed, row.jobs
                    ));
                }
            }
            if r.rows.is_empty() {
                eprintln!("fabric: no cells completed; skipping report");
            } else {
                summaries.insert("fabric", r.summary());
                emit(
                    &args,
                    "fabric",
                    &r.table(),
                    Some(r.summary()),
                    serde_json::to_string_pretty(&r).expect("json"),
                );
            }
        });
        ran += 1;
    }

    if args.experiment == "explain" {
        // Critical-path analysis (not a paper figure): rerun the fabric
        // workload's bracketing cells with telemetry on, decompose every
        // JCT into conservation-checked components, attribute wait to the
        // competing jobs that caused it, and extract critical paths.
        use tl_experiments::explain;
        isolated!("explain", {
            let (r, records) = explain::run_with(cfg, args.quick, &args.sweep_opts());
            collect_failures(&mut failures, "explain", &records);
            for c in &r.cells {
                if let Err(e) = c.report.check_conservation() {
                    failures.push(format!(
                        "[explain] oversub={}:1,policy={} — conservation: {e}",
                        c.oversub, c.policy
                    ));
                }
            }
            if r.cells.is_empty() {
                eprintln!("explain: no cells completed; skipping report");
            } else {
                summaries.insert("explain", r.summary());
                emit(
                    &args,
                    "explain",
                    &r.table(),
                    Some(format!("{}\n{}", r.report_text(), r.summary())),
                    serde_json::to_string_pretty(&r).expect("json"),
                );
            }
        });
        ran += 1;
    }

    if args.profile {
        // Self-profiling run (pairs with any experiment, or stands alone):
        // one instrumented 4:1 TLs-One fabric cell with per-subsystem
        // wall-time histograms. Wall-clock values vary run to run; the
        // slot set and counts are deterministic.
        use tl_experiments::explain;
        isolated!("profile", {
            let (rep, alloc) = explain::profile_cell(cfg, args.quick);
            println!("simulator self-profile (4:1 ps-star, TLs-One):\n{}", rep.render());
            println!(
                "allocator share of event handling: {:.1}%",
                100.0 * rep.share_of("alloc.solve", "engine.handlers").unwrap_or(0.0)
            );
            println!(
                "allocator kernel counters: rounds={} freeze_rounds={} heap_pops={} \
                 stale_key_skips={} links_touched={} parallel_dispatches={}",
                alloc.rounds,
                alloc.freeze_rounds,
                alloc.heap_pops,
                alloc.stale_key_skips,
                alloc.links_touched,
                alloc.parallel_dispatches,
            );
            if let Some(dir) = &args.json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                write_atomic(&dir.join("profile.json"), rep.to_json().as_bytes())
                    .expect("write json");
            }
        });
        ran += 1;
    }

    if args.experiment == "perf" {
        // One grid-search simulation per policy, reporting the engine's
        // allocator performance counters (SimOutput::alloc_stats).
        use tl_experiments::{run_table1, PolicyKind};
        isolated!("perf", {
            let kernel = cfg
                .alloc_kernel
                .unwrap_or_else(tl_net::default_alloc_kernel);
            println!(
                "allocator perf counters, Table I placement #8 (kernel={}):",
                kernel.label()
            );
            for policy in PolicyKind::all() {
                let t = std::time::Instant::now();
                let out = run_table1(cfg, Table1Index(8), policy);
                let wall = t.elapsed();
                let s = out.alloc_stats;
                println!(
                    "  {:<8} events={} sim_wall={:.2?} | alloc: invocations={} \
                     full_solves={} components_solved={} components_retained={} \
                     rounds={} flows_touched={} alloc_wall={:.2?}\n\
                     \x20          kernel: freeze_rounds={} heap_pops={} \
                     stale_key_skips={} links_touched={}",
                    policy.label(),
                    out.events,
                    wall,
                    s.invocations,
                    s.full_solves,
                    s.components_solved,
                    s.components_retained,
                    s.rounds,
                    s.flows_touched,
                    std::time::Duration::from_nanos(s.wall_nanos),
                    s.freeze_rounds,
                    s.heap_pops,
                    s.stale_key_skips,
                    s.links_touched,
                );
            }
            if args.trace_out.is_some() || args.metrics_out.is_some() {
                // One instrumented TLs-RR run for the requested exports.
                // Placement #1 colocates every PS on one host, so the trace
                // shows the rotations TLs-RR exists for (at #8 every PS host is
                // dedicated and rotation never re-bands anything).
                use tl_cluster::table1_placement;
                use tl_experiments::run_grid_search_telemetry;
                use tl_telemetry::TelemetryConfig;
                let placement = table1_placement(Table1Index(1), 21, 21);
                let out = run_grid_search_telemetry(
                    cfg,
                    &placement,
                    PolicyKind::TlsRr,
                    4,
                    None,
                    TelemetryConfig::full(simcore::SimDuration::from_millis(100)),
                );
                if let Some(path) = &args.trace_out {
                    if path.extension().is_some_and(|e| e == "jsonl") {
                        write_events(path, &out.telemetry.events);
                    } else {
                        // Full export: event spans plus counter tracks for the
                        // sampled cpu/net/fabric gauges (rack uplinks and
                        // downlinks show as per-link utilization counters on
                        // leaf-spine runs).
                        write_atomic(path, out.telemetry.to_chrome_trace().as_bytes())
                            .expect("write trace");
                        println!(
                            "telemetry: {} events + {} metric series written to {} (Chrome trace_event)",
                            out.telemetry.events.len(),
                            out.telemetry.metrics.len(),
                            path.display()
                        );
                    }
                }
                if let Some(path) = &args.metrics_out {
                    write_atomic(path, out.telemetry.metrics_json().as_bytes())
                        .expect("write metrics");
                    println!(
                        "telemetry: {} metrics written to {}",
                        out.telemetry.metrics.len(),
                        path.display()
                    );
                }
            }
        });
        ran += 1;
    }

    if args.experiment == "ablations" {
        // Scale the ablation sweeps down relative to the headline figures;
        // they multiply many runs. Each ablation is isolated: one panic
        // costs that table, not the other fourteen.
        let acfg = ExperimentConfig::scaled(cfg.iterations.min(80));

        isolated!("ablate_bands", {
            let r = bands::run(&acfg, &[1, 2, 3, 4, 6, 8]);
            emit(
                &args,
                "ablate_bands",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_rotation", {
            let r = rotation::run(&acfg, &[0.5, 1.0, 2.0, 5.0, 20.0, 1e6]);
            emit(
                &args,
                "ablate_rotation",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_jitter", {
            let r = jitter::run(&acfg, &[0.0, 0.15, 0.3, 0.5, 0.8]);
            emit(
                &args,
                "ablate_jitter",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_ordering", {
            let r = ordering::run(&acfg);
            emit(
                &args,
                "ablate_ordering",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_model_size", {
            let r = model_size::run(&acfg, &[1, 2, 4, 8, 16]);
            emit(
                &args,
                "ablate_model_size",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_rate_control", {
            let r = rate_control::run(&acfg);
            emit(
                &args,
                "ablate_rate_control",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_async", {
            let r = async_mode::run(&acfg);
            emit(
                &args,
                "ablate_async",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_ps_aware", {
            let r = ps_aware::run(&acfg);
            emit(
                &args,
                "ablate_ps_aware",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_qdisc", {
            let r = qdisc::run();
            emit(
                &args,
                "ablate_qdisc",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_churn", {
            let r = churn::run(&acfg, 5.0);
            emit(
                &args,
                "ablate_churn",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_timeline", {
            let r = timeline::run(&acfg, 250);
            let chart = r.ascii(100);
            emit(
                &args,
                "ablate_timeline",
                &r.table(),
                Some(chart),
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_fabric", {
            let r = fabric::run(&acfg, &[1.0, 8.0, 16.0, 32.0]);
            emit(
                &args,
                "ablate_fabric",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_fairness", {
            let r = fairness::run(&acfg, 2.0);
            emit(
                &args,
                "ablate_fairness",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_sharded_ps", {
            let r = sharded_ps::run(&acfg, &[1, 2, 4]);
            emit(
                &args,
                "ablate_sharded_ps",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        isolated!("ablate_slow_host", {
            let r = slow_host::run(&acfg);
            emit(
                &args,
                "ablate_slow_host",
                &r.table(),
                None,
                serde_json::to_string_pretty(&r).expect("json"),
            );
        });

        ran += 15;
    }

    if ran == 0 {
        usage_error(&format!("unknown experiment '{}'", args.experiment));
    }
    if !summaries.is_empty() {
        println!("== measured vs paper ==");
        for (name, s) in &summaries {
            println!("  {name}: {s}");
        }
    }
    if let Some((path, body)) = args.markdown.borrow().as_ref() {
        let header = format!(
            "# TensorLights reproduction report\n\n{} iterations/job, seed {}.\n\n",
            cfg.iterations, cfg.seed
        );
        write_atomic(path, format!("{header}{body}").as_bytes()).expect("write markdown report");
        println!("markdown report written to {}", path.display());
    }
    println!("\ndone in {:.1?}", t0.elapsed());

    // Exit-code ladder, applied only after every requested block drained:
    // interruption trumps everything (the ledger already holds the
    // completed cells), then validation divergence, then cell failures.
    if !failures.is_empty() {
        eprintln!("\n{} cell(s) did not complete:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
    }
    if interrupted() {
        match &args.ledger_dir {
            Some(dir) => eprintln!(
                "interrupted — completed cells are checkpointed; re-run with \
                 --resume --ledger-dir {} (same arguments) to continue",
                dir.display()
            ),
            None => eprintln!(
                "interrupted — no ledger directory (--json/--ledger-dir), progress \
                 was not checkpointed"
            ),
        }
        std::process::exit(130);
    }
    if validation_failed {
        eprintln!("validate: FAILED — backend divergence or invariant violations (see table)");
        std::process::exit(3);
    }
    if !failures.is_empty() {
        std::process::exit(4);
    }
}
