//! Figure 5 — normalized JCT of TensorLights vs FIFO.
//!
//! (a) across PS placements (batch size 4): "TLs-One reduces the average
//! job completion time by up to 27% ... under TLs-RR ... by up to 16%.
//! For the placement with less model update traffic contention, i.e.
//! placement #4 and above ... comparable performance as FIFO."
//!
//! (b) across local batch sizes at placement #1: "under more intense
//! traffic contention due to smaller local batch size, TLs-One (or TLs-RR)
//! enlarges the improvement over FIFO ... to 31% (or 17%)."

use crate::config::ExperimentConfig;
use crate::report::{pct, Table};
use crate::runner::{parallel_map, run_grid_search, PolicyKind};
use serde::Serialize;
use tl_cluster::{table1_placement, Table1Index};

/// One (x-axis point, policy) cell: normalized JCTs.
#[derive(Debug, Clone, Serialize)]
pub struct NormalizedCell {
    /// Per-job JCT normalized over the same job's JCT under FIFO —
    /// the scatter points.
    pub per_job: Vec<f64>,
    /// Mean of the normalized values — the bar height.
    pub mean: f64,
}

/// One x-axis point (a placement for 5a, a batch size for 5b).
#[derive(Debug, Serialize)]
pub struct Fig5Row {
    /// Placement index (5a) or batch size (5b).
    pub x: u32,
    /// FIFO mean JCT (seconds), the normalization base.
    pub fifo_mean_jct: f64,
    /// Normalized cell for TLs-One.
    pub tls_one: NormalizedCell,
    /// Normalized cell for TLs-RR.
    pub tls_rr: NormalizedCell,
}

/// A normalized-JCT figure (either panel).
#[derive(Debug, Serialize)]
pub struct Fig5 {
    /// Panel label.
    pub label: &'static str,
    /// Rows along the x axis.
    pub rows: Vec<Fig5Row>,
    /// Best (most negative) mean improvement of TLs-One across rows.
    pub best_tls_one_improvement: f64,
    /// Best mean improvement of TLs-RR across rows.
    pub best_tls_rr_improvement: f64,
}

fn normalize(policy_jcts: &[f64], fifo_jcts: &[f64]) -> NormalizedCell {
    assert_eq!(policy_jcts.len(), fifo_jcts.len());
    let per_job: Vec<f64> = policy_jcts
        .iter()
        .zip(fifo_jcts)
        .map(|(p, f)| p / f)
        .collect();
    NormalizedCell {
        mean: per_job.iter().sum::<f64>() / per_job.len() as f64,
        per_job,
    }
}

fn run_axis(
    cfg: &ExperimentConfig,
    label: &'static str,
    points: Vec<(u32, Table1Index, u32)>, // (x, placement index, batch)
) -> Fig5 {
    // One run per (point, policy), all in parallel.
    let mut tasks = Vec::new();
    for &(x, idx, batch) in &points {
        for policy in PolicyKind::all() {
            tasks.push((x, idx, batch, policy));
        }
    }
    let outs = parallel_map(tasks.clone(), |(_, idx, batch, policy)| {
        let placement = table1_placement(idx, 21, 21);
        let out = run_grid_search(cfg, &placement, policy, batch, None);
        assert!(out.all_complete(), "{idx:?}/{policy:?} did not finish");
        out.jobs
            .iter()
            .map(|j| j.jct_secs().unwrap())
            .collect::<Vec<f64>>()
    });
    let mut rows = Vec::new();
    for (pi, &(x, _, _)) in points.iter().enumerate() {
        let base = pi * 3;
        let fifo = &outs[base];
        let one = &outs[base + 1];
        let rr = &outs[base + 2];
        rows.push(Fig5Row {
            x,
            fifo_mean_jct: fifo.iter().sum::<f64>() / fifo.len() as f64,
            tls_one: normalize(one, fifo),
            tls_rr: normalize(rr, fifo),
        });
    }
    let best =
        |sel: fn(&Fig5Row) -> f64| rows.iter().map(sel).fold(0.0f64, |acc, m| acc.max(1.0 - m));
    Fig5 {
        label,
        best_tls_one_improvement: best(|r| r.tls_one.mean),
        best_tls_rr_improvement: best(|r| r.tls_rr.mean),
        rows,
    }
}

/// Figure 5a: normalized JCT across the given placements (batch size 4).
pub fn run_5a(cfg: &ExperimentConfig, indexes: &[Table1Index]) -> Fig5 {
    run_axis(
        cfg,
        "5a",
        indexes.iter().map(|&i| (i.0 as u32, i, 4)).collect(),
    )
}

/// Figure 5b: normalized JCT across local batch sizes at placement #1.
pub fn run_5b(cfg: &ExperimentConfig, batches: &[u32]) -> Fig5 {
    run_axis(
        cfg,
        "5b",
        batches.iter().map(|&b| (b, Table1Index(1), b)).collect(),
    )
}

impl Fig5 {
    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let xname = if self.label == "5a" {
            "Placement"
        } else {
            "Batch size"
        };
        let mut t = Table::new(
            format!("Figure {}: normalized JCT (lower is better)", self.label),
            &[xname, "FIFO JCT (s)", "TLs-One", "TLs-RR"],
        );
        for r in &self.rows {
            let x = if self.label == "5a" {
                format!("#{}", r.x)
            } else {
                r.x.to_string()
            };
            t.push_row(vec![
                x,
                format!("{:.1}", r.fifo_mean_jct),
                format!("{:.3}", r.tls_one.mean),
                format!("{:.3}", r.tls_rr.mean),
            ]);
        }
        t
    }

    /// Summary vs the paper's headline numbers.
    pub fn summary(&self) -> String {
        let paper = if self.label == "5a" {
            "up to 27% (TLs-One), 16% (TLs-RR)"
        } else {
            "up to 31% (TLs-One), 17% (TLs-RR)"
        };
        format!(
            "best improvement: TLs-One {}, TLs-RR {} [paper: {}]",
            pct(-self.best_tls_one_improvement),
            pct(-self.best_tls_rr_improvement),
            paper
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_wins_under_contention_only() {
        let cfg = ExperimentConfig::quick();
        let f = run_5a(&cfg, &[Table1Index(1), Table1Index(8)]);
        let heavy = &f.rows[0];
        let mild = &f.rows[1];
        assert!(
            heavy.tls_one.mean < 0.9,
            "TLs-One should beat FIFO at #1: {}",
            heavy.tls_one.mean
        );
        assert!(
            (mild.tls_one.mean - 1.0).abs() < 0.05,
            "TLs ~ FIFO at #8: {}",
            mild.tls_one.mean
        );
        assert!(f.best_tls_one_improvement > 0.1);
        assert!(f.summary().contains("27%"));
    }

    #[test]
    fn smaller_batch_amplifies_improvement() {
        let cfg = ExperimentConfig::quick();
        let f = run_5b(&cfg, &[1, 16]);
        let small = &f.rows[0];
        let large = &f.rows[1];
        assert!(
            small.tls_one.mean < large.tls_one.mean,
            "batch 1 ({:.3}) should gain more than batch 16 ({:.3})",
            small.tls_one.mean,
            large.tls_one.mean
        );
        assert!(f.table().render().contains("Batch size"));
    }
}
