//! Figure 6 — barrier wait time under the three policies at placement #1.
//!
//! Paper: "The average barrier wait time are comparable under the three
//! network scheduling policies. ... Compared with FIFO, the average (or
//! median) variance of barrier wait time under TLs-One is reduced by 26%
//! (or 40%), and under TLs-RR by 15% (or 30%)."

use crate::config::ExperimentConfig;
use crate::report::{pct, Table};
use crate::runner::{parallel_map, run_table1, PolicyKind};
use serde::Serialize;
use simcore::SampleSet;
use tl_cluster::Table1Index;

/// One policy's barrier-wait distributions.
#[derive(Debug, Serialize)]
pub struct Fig6Side {
    /// Policy label.
    pub label: &'static str,
    /// CDF of per-barrier mean waits (seconds).
    pub cdf_mean: Vec<(f64, f64)>,
    /// CDF of per-barrier wait variances (seconds²).
    pub cdf_var: Vec<(f64, f64)>,
    /// Average of per-barrier means.
    pub mean_of_means: f64,
    /// Average of per-barrier variances.
    pub mean_of_vars: f64,
    /// Median of per-barrier variances.
    pub median_of_vars: f64,
}

/// The figure: three policies at placement #1.
#[derive(Debug, Serialize)]
pub struct Fig6 {
    /// FIFO / TLs-One / TLs-RR distributions.
    pub sides: Vec<Fig6Side>,
    /// Reduction of the *average* wait variance vs FIFO: (TLs-One, TLs-RR).
    pub var_mean_reduction: (f64, f64),
    /// Reduction of the *median* wait variance vs FIFO: (TLs-One, TLs-RR).
    pub var_median_reduction: (f64, f64),
}

/// Run Figure 6.
pub fn run(cfg: &ExperimentConfig) -> Fig6 {
    let sides = parallel_map(PolicyKind::all().to_vec(), |policy| {
        let out = run_table1(cfg, Table1Index(1), policy);
        assert!(out.all_complete());
        let mut means = SampleSet::new();
        let mut vars = SampleSet::new();
        for j in &out.jobs {
            means.extend_from(&j.barrier_means);
            vars.extend_from(&j.barrier_vars);
        }
        Fig6Side {
            label: policy.label(),
            mean_of_means: means.mean(),
            mean_of_vars: vars.mean(),
            median_of_vars: vars.median().unwrap_or(f64::NAN),
            cdf_mean: means.cdf(64),
            cdf_var: vars.cdf(64),
        }
    });
    let red = |x: f64, base: f64| 1.0 - x / base;
    let fifo_mean = sides[0].mean_of_vars;
    let fifo_median = sides[0].median_of_vars;
    Fig6 {
        var_mean_reduction: (
            red(sides[1].mean_of_vars, fifo_mean),
            red(sides[2].mean_of_vars, fifo_mean),
        ),
        var_median_reduction: (
            red(sides[1].median_of_vars, fifo_median),
            red(sides[2].median_of_vars, fifo_median),
        ),
        sides,
    }
}

impl Fig6 {
    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: barrier wait time at placement #1",
            &[
                "Policy",
                "mean wait (s)",
                "mean variance (s^2)",
                "median variance (s^2)",
            ],
        );
        for s in &self.sides {
            t.push_row(vec![
                s.label.to_string(),
                format!("{:.3}", s.mean_of_means),
                format!("{:.5}", s.mean_of_vars),
                format!("{:.5}", s.median_of_vars),
            ]);
        }
        t
    }

    /// Summary vs the paper's headline numbers.
    pub fn summary(&self) -> String {
        format!(
            "wait-variance reduction vs FIFO — TLs-One: avg {} / median {} [paper: 26% / 40%]; \
             TLs-RR: avg {} / median {} [paper: 15% / 30%]",
            pct(-self.var_mean_reduction.0),
            pct(-self.var_median_reduction.0),
            pct(-self.var_mean_reduction.1),
            pct(-self.var_median_reduction.1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorlights_reduces_wait_variance() {
        let cfg = ExperimentConfig::quick();
        let f = run(&cfg);
        assert_eq!(f.sides.len(), 3);
        assert_eq!(f.sides[0].label, "FIFO");
        assert!(
            f.var_mean_reduction.0 > 0.0,
            "TLs-One reduces average variance: {}",
            f.var_mean_reduction.0
        );
        assert!(
            f.var_median_reduction.0 > 0.0,
            "TLs-One reduces median variance: {}",
            f.var_median_reduction.0
        );
        assert!(
            f.var_mean_reduction.1 > 0.0,
            "TLs-RR reduces average variance: {}",
            f.var_mean_reduction.1
        );
        assert!(f.summary().contains("paper"));
        assert!(f.table().render().contains("TLs-RR"));
    }
}
