//! Calibrated experiment configuration.
//!
//! The simulator cannot (and need not) match the authors' absolute
//! wall-clock numbers — the goal is the paper's *shape*: who wins, by
//! roughly what factor, and where the crossovers fall. The constants here
//! are calibrated so that the paper-scale workload lands in the paper's
//! regime: iteration times of a couple of seconds, job lifetimes of
//! thousands of seconds (at full 1500-iteration scale), and network
//! contention at colocated PS hosts that is material but not the only cost.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use tl_dl::{ComputeModel, SimConfig, TopologySpec, TrafficPattern};
use tl_net::Bandwidth;

/// Top-level knobs shared by every reproduction experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Synchronous iterations per job (the paper runs 1500; the default is
    /// scaled down — pass `--full` to the harness for paper scale).
    pub iterations: u64,
    /// Master seed.
    pub seed: u64,
    /// Per-sample compute cost (core-seconds).
    pub per_sample_core_secs: f64,
    /// Compute-time noise sigma.
    pub compute_sigma: f64,
    /// Per-flow weight lognormal sigma (TCP unfairness → stragglers).
    pub net_sigma: f64,
    /// TLs-RR rotation interval.
    pub rr_interval: SimDuration,
    /// Number of tc priority bands.
    pub num_bands: u8,
    /// Link speed.
    pub link_gbps: f64,
    /// Link graph the simulations run on (`repro --topology`); the paper's
    /// single non-blocking switch unless overridden.
    #[serde(default)]
    pub topology: TopologySpec,
    /// Run-wide traffic pattern (`repro --pattern`); the paper's PS star
    /// unless overridden.
    #[serde(default)]
    pub pattern: TrafficPattern,
    /// Allocator worker threads. `None` defers to the engine default
    /// (`TL_WORKERS`, else available parallelism capped at 8). Results are
    /// bitwise-identical at every setting; this only moves wall time.
    #[serde(default)]
    pub alloc_workers: Option<usize>,
    /// Max-min kernel (`repro --kernel`). `None` defers to the engine
    /// default (`TL_KERNEL`, else the bottleneck-ordered kernel). Both
    /// kernels are bitwise-identical; this only moves wall time.
    #[serde(default)]
    pub alloc_kernel: Option<tl_dl::AllocKernel>,
    /// Component-dispatch parallelism threshold. `None` defers to the
    /// engine default (`TL_PAR_MIN_FLOWS`, else 128).
    #[serde(default)]
    pub par_min_flows: Option<usize>,
    /// Intra-component sharding threshold. `None` defers to the engine
    /// default (`TL_PAR_MIN_COMPONENT_FLOWS`, else 4096).
    #[serde(default)]
    pub par_min_component_flows: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::scaled(300)
    }
}

impl ExperimentConfig {
    /// Config for a run of `iterations` synchronous iterations per job.
    ///
    /// The TLs-RR rotation interval is scaled with the run length so that
    /// the *number of rotations per job lifetime* matches the paper's
    /// (T = 20 s against ~1500 iterations); otherwise short scaled runs see
    /// too few rotations for TLs-RR to differ from TLs-One.
    pub fn scaled(iterations: u64) -> Self {
        ExperimentConfig {
            iterations,
            seed: 20190520, // IPPS 2019's opening day
            per_sample_core_secs: 0.15,
            compute_sigma: 0.08,
            net_sigma: 0.30,
            rr_interval: SimDuration::from_secs_f64(20.0 * iterations as f64 / 1500.0),
            num_bands: 6,
            link_gbps: 10.0,
            topology: TopologySpec::SingleSwitch,
            pattern: TrafficPattern::PsStar,
            alloc_workers: None,
            alloc_kernel: None,
            par_min_flows: None,
            par_min_component_flows: None,
        }
    }

    /// Paper-scale config (1500 iterations, T = 20 s).
    pub fn full() -> Self {
        Self::scaled(1500)
    }

    /// Quick config for tests and benches.
    pub fn quick() -> Self {
        Self::scaled(30)
    }

    /// Build the simulator configuration (without an active window).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            link: Bandwidth::from_gbps(self.link_gbps),
            host_spec: tl_cluster::HostSpec::paper_testbed(),
            compute: ComputeModel {
                per_sample_core_secs: self.per_sample_core_secs,
                noise_sigma: self.compute_sigma,
                ..Default::default()
            },
            net_weight_sigma: self.net_sigma,
            seed: self.seed,
            active_window: None,
            max_sim_time: SimTime::from_secs(14 * 24 * 3600),
            trace: false,
            model_update_rate_cap: None,
            sample_interval: None,
            metrics_interval: None,
            core_capacity: None,
            host_spec_overrides: Vec::new(),
            faults: tl_dl::FaultPlan::default(),
            retry: tl_dl::RetryConfig::default(),
            barrier_loss: tl_dl::BarrierLossPolicy::default(),
            topology: self.topology,
            pattern: self.pattern,
            alloc_workers: self.alloc_workers,
            alloc_kernel: self.alloc_kernel,
            par_min_flows: self.par_min_flows,
            par_min_component_flows: self.par_min_component_flows,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scaled_full_is_paper() {
        assert_eq!(ExperimentConfig::default().iterations, 300);
        assert_eq!(ExperimentConfig::full().iterations, 1500);
        assert!(ExperimentConfig::quick().iterations < 100);
    }

    #[test]
    fn sim_config_propagates_knobs() {
        let e = ExperimentConfig {
            seed: 7,
            net_sigma: 0.5,
            topology: TopologySpec::LeafSpine {
                racks: 3,
                hosts_per_rack: 7,
                oversub: 2.0,
            },
            pattern: TrafficPattern::Ring,
            ..Default::default()
        };
        let s = e.sim_config();
        assert_eq!(s.seed, 7);
        assert_eq!(s.net_weight_sigma, 0.5);
        assert!((s.link.gbps() - 10.0).abs() < 1e-9);
        assert_eq!(s.topology, e.topology);
        assert_eq!(s.pattern, TrafficPattern::Ring);
    }
}
