//! Figure 2 — JCT of concurrent DL jobs under various placements (FIFO).
//!
//! Paper: "the performance gap in terms of average job completion time can
//! be as large as 75% due to placement of PS tasks."

use crate::config::ExperimentConfig;
use crate::report::{pct, Table};
use crate::runner::{parallel_map, run_table1, PolicyKind};
use serde::Serialize;
use tl_cluster::Table1Index;

/// One placement's results.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Table I index.
    pub index: u8,
    /// Individual job completion times (seconds) — the scatter points.
    pub jcts: Vec<f64>,
    /// Average JCT (the bar height).
    pub mean_jct: f64,
}

/// The full figure.
#[derive(Debug, Serialize)]
pub struct Fig2 {
    /// One row per placement, in index order.
    pub rows: Vec<Fig2Row>,
    /// `(worst mean − best mean) / best mean`.
    pub gap_vs_best: f64,
}

/// Run Figure 2 for the given placement indexes (pass
/// `Table1Index::all()` for the full figure).
pub fn run(cfg: &ExperimentConfig, indexes: &[Table1Index]) -> Fig2 {
    let rows = parallel_map(indexes.to_vec(), |idx| {
        let out = run_table1(cfg, idx, PolicyKind::Fifo);
        assert!(out.all_complete(), "placement {idx:?} did not finish");
        let jcts: Vec<f64> = out.jobs.iter().map(|j| j.jct_secs().unwrap()).collect();
        Fig2Row {
            index: idx.0,
            mean_jct: jcts.iter().sum::<f64>() / jcts.len() as f64,
            jcts,
        }
    });
    let best = rows
        .iter()
        .map(|r| r.mean_jct)
        .fold(f64::INFINITY, f64::min);
    let worst = rows.iter().map(|r| r.mean_jct).fold(0.0, f64::max);
    Fig2 {
        rows,
        gap_vs_best: (worst - best) / best,
    }
}

impl Fig2 {
    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 2: JCT under FIFO across PS placements",
            &["Placement", "mean JCT (s)", "min JCT (s)", "max JCT (s)"],
        );
        for r in &self.rows {
            let min = r.jcts.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = r.jcts.iter().fold(0.0f64, |a, &b| a.max(b));
            t.push_row(vec![
                format!("#{}", r.index),
                format!("{:.1}", r.mean_jct),
                format!("{min:.1}"),
                format!("{max:.1}"),
            ]);
        }
        t
    }

    /// Summary line vs the paper's headline number.
    pub fn summary(&self) -> String {
        format!(
            "performance gap (worst vs best mean JCT): {} [paper: as large as 75%]",
            pct(self.gap_vs_best)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_hurts() {
        let cfg = ExperimentConfig::quick();
        let f = run(&cfg, &[Table1Index(1), Table1Index(8)]);
        assert_eq!(f.rows.len(), 2);
        assert!(
            f.rows[0].mean_jct > f.rows[1].mean_jct * 1.2,
            "#1 ({:.1}s) should be much slower than #8 ({:.1}s)",
            f.rows[0].mean_jct,
            f.rows[1].mean_jct
        );
        assert!(f.gap_vs_best > 0.2);
        assert!(f.summary().contains("paper"));
    }

    #[test]
    fn each_row_has_all_jobs() {
        let cfg = ExperimentConfig::quick();
        let f = run(&cfg, &[Table1Index(8)]);
        assert_eq!(f.rows[0].jcts.len(), 21);
        assert!(f.rows[0].jcts.iter().all(|&j| j > 0.0));
        let t = f.table().render();
        assert!(t.contains("#8"));
    }
}
