//! Figure 4 — scheduling model-update traffic from two colocated PSes.
//!
//! The paper's conceptual figure, regenerated from the chunk-level engine:
//! two jobs' PSes share one host; each sends one model update to each of
//! its workers. Under FIFO the transfers interleave and every worker gets
//! its update near the end (4b); under TLs-One job 1's updates all arrive
//! by the midpoint (4c); under TLs-RR a rotation mid-burst swaps the roles
//! (4d).

use crate::report::Table;
use serde::Serialize;
use simcore::SimTime;
use tl_net::{Band, Bandwidth, PacketRun, PacketSim, Qdisc, Rotation, Transfer};
use tl_telemetry::{SimEvent, TimedEvent};

/// Scenario parameters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig4Config {
    /// Workers per job.
    pub workers: u32,
    /// Model update size per worker (bytes).
    pub update_bytes: u64,
    /// Link speed.
    pub link_gbps: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            workers: 4,
            update_bytes: 25_000_000,
            link_gbps: 10.0,
        }
    }
}

/// Delivery times for one discipline.
#[derive(Debug, Serialize)]
pub struct Fig4Panel {
    /// Panel label ("FIFO", "TLs-One", "TLs-RR").
    pub label: &'static str,
    /// `(job, worker, delivery time seconds)` per transfer.
    pub deliveries: Vec<(u64, u32, f64)>,
    /// When each job's *last* worker got the update (the barrier-relevant
    /// time), per job.
    pub job_done: Vec<(u64, f64)>,
}

/// The figure: three panels.
#[derive(Debug, Serialize)]
pub struct Fig4 {
    /// Scenario used.
    pub config: Fig4Config,
    /// FIFO / TLs-One / TLs-RR panels.
    pub panels: Vec<Fig4Panel>,
    /// ASCII timelines (one row per panel) showing which job occupies the
    /// link over time.
    pub ascii: String,
}

fn transfers(cfg: &Fig4Config, bands: [u8; 2]) -> Vec<Transfer> {
    let mut ts = Vec::new();
    for (job, &band) in bands.iter().enumerate() {
        for w in 0..cfg.workers {
            ts.push(Transfer {
                tag: job as u64 + 1,
                dst: job as u32 * cfg.workers + w,
                bytes: cfg.update_bytes,
                band: Band(band),
                arrival: SimTime::ZERO,
            });
        }
    }
    ts
}

fn panel(label: &'static str, run: &PacketRun) -> Fig4Panel {
    Fig4Panel {
        label,
        deliveries: run
            .outcomes
            .iter()
            .map(|o| (o.tag, o.dst, o.finished.as_secs_f64()))
            .collect(),
        job_done: [1u64, 2]
            .iter()
            .map(|&tag| (tag, run.last_finish_of_tag(tag).unwrap().as_secs_f64()))
            .collect(),
    }
}

/// Render a panel's link occupancy as a row of job digits (time buckets).
fn ascii_row(run: &PacketRun, buckets: usize, total: f64) -> String {
    let mut row = vec![b'.'; buckets];
    for e in &run.timeline {
        let frac = e.time.as_secs_f64() / total;
        let idx = ((frac * buckets as f64) as usize).min(buckets - 1);
        row[idx] = b'0' + e.tag as u8;
    }
    String::from_utf8(row).expect("ascii digits")
}

/// Run Figure 4.
pub fn run(cfg: &Fig4Config) -> Fig4 {
    let link = Bandwidth::from_gbps(cfg.link_gbps);
    let total_bytes = 2 * cfg.workers as u64 * cfg.update_bytes;
    let total_secs = total_bytes as f64 / link.bytes_per_sec();

    let fifo = PacketSim::new(link, Qdisc::PfifoFast).run(&transfers(cfg, [0, 0]), &[]);
    let one = PacketSim::new(link, Qdisc::Prio).run(&transfers(cfg, [0, 1]), &[]);
    // TLs-RR: the rotation interval T elapses while job 1 is still mid-burst
    // (T = total/4), so the roles swap as in the paper's panel (d): job 2
    // passes, job 1 yields and finishes last.
    let rot = Rotation {
        at: SimTime::from_secs_f64(total_secs / 4.0),
        assignment: vec![(1, Band(1)), (2, Band(0))],
    };
    let rr = PacketSim::new(link, Qdisc::Prio).run(&transfers(cfg, [0, 1]), &[rot]);

    let ascii = format!(
        "link occupancy over time ('1' = job 1, '2' = job 2):\n  FIFO    |{}|\n  TLs-One |{}|\n  TLs-RR  |{}|\n",
        ascii_row(&fifo, 64, total_secs),
        ascii_row(&one, 64, total_secs),
        ascii_row(&rr, 64, total_secs),
    );
    Fig4 {
        config: *cfg,
        panels: vec![
            panel("FIFO", &fifo),
            panel("TLs-One", &one),
            panel("TLs-RR", &rr),
        ],
        ascii,
    }
}

/// Synthesize a typed telemetry stream for the TLs-RR panel — the paper's
/// richest narrative (panel 4d): both jobs arrive, their model-update
/// transfers start, the mid-burst rotation swaps the bands, job 2's
/// transfers overtake, and each job completes when its last worker is
/// served. Feed the result to [`tl_telemetry::export::chrome_trace`] for a
/// Perfetto-loadable timeline with one track per job.
pub fn telemetry_events(cfg: &Fig4Config) -> Vec<TimedEvent> {
    let link = Bandwidth::from_gbps(cfg.link_gbps);
    let total_bytes = 2 * cfg.workers as u64 * cfg.update_bytes;
    let total_secs = total_bytes as f64 / link.bytes_per_sec();
    let rot = Rotation {
        at: SimTime::from_secs_f64(total_secs / 4.0),
        assignment: vec![(1, Band(1)), (2, Band(0))],
    };
    let ts = transfers(cfg, [0, 1]);
    let run = PacketSim::new(link, Qdisc::Prio).run(&ts, std::slice::from_ref(&rot));

    let mut events = Vec::new();
    for tag in [1u64, 2] {
        events.push(TimedEvent {
            at: SimTime::ZERO,
            event: SimEvent::JobArrival { job: tag },
        });
    }
    // All transfers leave the two colocated PSes on host 0.
    for (i, (t, o)) in ts.iter().zip(run.outcomes.iter()).enumerate() {
        events.push(TimedEvent {
            at: o.arrival,
            event: SimEvent::FlowStart {
                flow: i as u64,
                tag: t.tag,
                src: 0,
                dst: o.dst,
                bytes: o.bytes as f64,
                band: t.band.0,
            },
        });
        events.push(TimedEvent {
            at: o.finished,
            event: SimEvent::FlowFinish {
                flow: i as u64,
                tag: o.tag,
                src: 0,
                dst: o.dst,
                bytes: o.bytes as f64,
                started: o.first_service,
            },
        });
    }
    for &(tag, band) in &rot.assignment {
        let in_flight = run
            .outcomes
            .iter()
            .filter(|o| o.tag == tag && o.finished > rot.at)
            .count() as u32;
        events.push(TimedEvent {
            at: rot.at,
            event: SimEvent::PriorityRotation {
                tag,
                band: band.0,
                flows: in_flight,
            },
        });
    }
    for tag in [1u64, 2] {
        events.push(TimedEvent {
            at: run.last_finish_of_tag(tag).expect("tag has transfers"),
            event: SimEvent::JobCompletion {
                job: tag,
                iterations: 1,
            },
        });
    }
    // Stable sort keeps same-instant events in the construction order above,
    // so the stream is deterministic.
    events.sort_by_key(|e| e.at);
    events
}

impl Fig4 {
    /// Per-panel job completion table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 4: two colocated PSes, last model-update delivery per job",
            &["Policy", "job 1 done (s)", "job 2 done (s)"],
        );
        for p in &self.panels {
            t.push_row(vec![
                p.label.to_string(),
                format!("{:.3}", p.job_done[0].1),
                format!("{:.3}", p.job_done[1].1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_narrative() {
        let f = run(&Fig4Config::default());
        let total = 2.0 * 4.0 * 25e6 / 1.25e9; // 0.16 s
        let fifo = &f.panels[0];
        let one = &f.panels[1];
        // 4b: under FIFO both jobs finish near the very end.
        assert!((fifo.job_done[0].1 - total).abs() < 0.02);
        assert!((fifo.job_done[1].1 - total).abs() < 0.02);
        // 4c: under TLs-One job 1 is done at the midpoint, job 2 no later
        // than under FIFO.
        assert!((one.job_done[0].1 - total / 2.0).abs() < 0.02);
        assert!(one.job_done[1].1 <= fifo.job_done[1].1 + 1e-9);
        // 4d: under TLs-RR the rotation lets job 2 finish before job 1.
        let rr = &f.panels[2];
        assert!(rr.job_done[1].1 < rr.job_done[0].1);
    }

    #[test]
    fn ascii_timeline_shows_phases() {
        let f = run(&Fig4Config::default());
        // TLs-One row: first half all job 1, second half all job 2.
        let one_row: &str = f.ascii.lines().nth(2).unwrap();
        let bar = one_row.split('|').nth(1).unwrap();
        let first: String = bar.chars().take(24).collect();
        let last: String = bar.chars().rev().take(24).collect();
        assert!(first.chars().all(|c| c == '1'), "{first}");
        assert!(last.chars().all(|c| c == '2'), "{last}");
        // FIFO row interleaves both.
        let fifo_row: &str = f.ascii.lines().nth(1).unwrap();
        let fbar = fifo_row.split('|').nth(1).unwrap();
        assert!(fbar.contains('1') && fbar.contains('2'));
        assert!(f.table().render().contains("TLs-RR"));
    }

    #[test]
    fn telemetry_stream_covers_the_narrative() {
        let cfg = Fig4Config::default();
        let events = telemetry_events(&cfg);
        let count = |k: &str| events.iter().filter(|e| e.event.kind() == k).count();
        assert_eq!(count("job_arrival"), 2);
        assert_eq!(count("job_completion"), 2);
        assert_eq!(count("flow_start"), 2 * cfg.workers as usize);
        assert_eq!(count("flow_finish"), 2 * cfg.workers as usize);
        assert_eq!(count("priority_rotation"), 2);
        // Sorted by time, and the rotation happens mid-burst.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        let trace = tl_telemetry::export::chrome_trace(&events);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("rotate -> band"));
    }
}
