//! Shared experiment plumbing: policies by name, grid-search runs, and
//! parallel sweeps.

use crate::config::ExperimentConfig;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use tensorlights::{FifoPolicy, JobOrdering, PriorityPolicy, TlsOne, TlsRr};
use tl_cluster::{table1_placement, Placement, Table1Index};
use tl_dl::{SimOutput, Simulation};
use tl_telemetry::TelemetryConfig;
use tl_workloads::GridSearchConfig;

/// The three network scheduling policies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Default FIFO (no tc configuration) — the baseline.
    Fifo,
    /// TLs-One: static distinct priorities.
    TlsOne,
    /// TLs-RR: priorities rotated every interval T.
    TlsRr,
}

impl PolicyKind {
    /// All policies, baseline first.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Fifo, PolicyKind::TlsOne, PolicyKind::TlsRr]
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::TlsOne => "TLs-One",
            PolicyKind::TlsRr => "TLs-RR",
        }
    }

    /// Instantiate the policy. Grid-search jobs are homogeneous, so the
    /// paper's random priority assignment is used for TLs (seeded for
    /// determinism).
    pub fn build(&self, cfg: &ExperimentConfig) -> Box<dyn PriorityPolicy + Send> {
        let ordering = JobOrdering::Random { seed: cfg.seed };
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy),
            PolicyKind::TlsOne => Box::new(TlsOne::new(ordering).with_bands(cfg.num_bands)),
            PolicyKind::TlsRr => Box::new(
                TlsRr::new(ordering)
                    .with_bands(cfg.num_bands)
                    .with_interval(cfg.rr_interval),
            ),
        }
    }
}

/// One grid-search run: the paper's 21-job workload (scaled to
/// `cfg.iterations`) on the given placement under the given policy.
pub fn run_grid_search(
    cfg: &ExperimentConfig,
    placement: &Placement,
    policy: PolicyKind,
    batch_size: u32,
    window: Option<(SimTime, SimTime)>,
) -> SimOutput {
    run_grid_search_telemetry(
        cfg,
        placement,
        policy,
        batch_size,
        window,
        TelemetryConfig::disabled(),
    )
}

/// [`run_grid_search`] with an explicit telemetry configuration; the
/// structured events/metrics land in [`SimOutput::telemetry`].
pub fn run_grid_search_telemetry(
    cfg: &ExperimentConfig,
    placement: &Placement,
    policy: PolicyKind,
    batch_size: u32,
    window: Option<(SimTime, SimTime)>,
    telemetry: TelemetryConfig,
) -> SimOutput {
    let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
    wl.local_batch_size = batch_size;
    let setups = wl.build(placement);
    let mut sim_cfg = cfg.sim_config();
    sim_cfg.active_window = window;
    let mut policy = policy.build(cfg);
    Simulation::new(sim_cfg)
        .jobs(setups)
        .policy_ref(policy.as_mut())
        .telemetry(telemetry)
        .run()
}

/// Grid search on a Table I placement with the paper's batch size 4.
pub fn run_table1(cfg: &ExperimentConfig, index: Table1Index, policy: PolicyKind) -> SimOutput {
    let placement = table1_placement(index, 21, 21);
    run_grid_search(cfg, &placement, policy, 4, None)
}

/// Run independent jobs across a bounded pool of worker threads (at most
/// one per available core), preserving input order in the output. Workers
/// pull from a shared queue, so uneven job costs balance dynamically.
/// Used by the sweep experiments.
///
/// If a closure panics, the panic payload of the *lowest input index* that
/// panicked is re-raised on the calling thread, but only after the entire
/// remaining queue drains — siblings keep running to completion and the
/// original message survives, instead of every worker dying with a
/// misleading "sweep queue poisoned"/"sweep worker panicked". Picking the
/// lowest index (rather than whichever thread lost the race) keeps the
/// surfaced error deterministic across interleavings; the orchestrator's
/// cell isolation relies on the drain guarantee.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    parallel_map_with_workers(inputs, None, f)
}

/// [`parallel_map`] with the worker count forced to `workers` (when
/// `Some`) instead of the available core count. `Some(1)` runs strictly
/// sequentially on the calling thread. Exists so determinism tests can
/// prove results are byte-identical no matter how many threads ran the
/// sweep; everything else should use [`parallel_map`].
pub fn parallel_map_with_workers<I, O, F>(inputs: Vec<I>, workers: Option<usize>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let n = inputs.len();
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(n);
    type Panic = (usize, Box<dyn std::any::Any + Send>);
    // Keep the panic from the lowest input index: deterministic regardless
    // of which worker hit its panic first.
    fn keep_earliest(slot: &mut Option<Panic>, idx: usize, payload: Box<dyn std::any::Any + Send>) {
        match slot {
            Some((held, _)) if *held <= idx => {}
            _ => *slot = Some((idx, payload)),
        }
    }
    if workers <= 1 {
        // Same drain-then-reraise semantics as the threaded path.
        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<Panic> = None;
        for (i, input) in inputs.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(input))) {
                Ok(o) => out.push(o),
                Err(payload) => keep_earliest(&mut first_panic, i, payload),
            }
        }
        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        return out;
    }
    let queue = std::sync::Mutex::new(inputs.into_iter().enumerate());
    let first_panic: std::sync::Mutex<Option<Panic>> = std::sync::Mutex::new(None);
    let mut results: Vec<(usize, O)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let first_panic = &first_panic;
                let f = &f;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        // `into_inner` recovers a poisoned queue: the lock
                        // only guards the iterator cursor, which a panic
                        // elsewhere cannot corrupt.
                        let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                        match next {
                            Some((i, input)) => {
                                match catch_unwind(AssertUnwindSafe(|| f(input))) {
                                    Ok(out) => done.push((i, out)),
                                    Err(payload) => keep_earliest(
                                        &mut first_panic
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner()),
                                        i,
                                        payload,
                                    ),
                                }
                            }
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker died outside the job closure"))
            .collect()
    });
    if let Some((_, payload)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::Fifo.label(), "FIFO");
        assert_eq!(PolicyKind::TlsOne.label(), "TLs-One");
        assert_eq!(PolicyKind::TlsRr.label(), "TLs-RR");
    }

    #[test]
    fn policies_have_expected_names() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(PolicyKind::Fifo.build(&cfg).name(), "fifo");
        assert_eq!(PolicyKind::TlsOne.build(&cfg).name(), "tls-one");
        assert_eq!(PolicyKind::TlsRr.build(&cfg).name(), "tls-rr");
    }

    #[test]
    fn quick_grid_search_completes() {
        let cfg = ExperimentConfig::quick();
        let out = run_table1(&cfg, Table1Index(8), PolicyKind::Fifo);
        assert!(out.all_complete());
        assert_eq!(out.jobs.len(), 21);
        for j in &out.jobs {
            assert_eq!(j.iterations, cfg.iterations);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_propagates_original_panic() {
        // Regression: a panicking closure used to surface as "sweep worker
        // panicked" (or poison siblings) — the original payload must win.
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect(), |x: i32| {
                if x == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic in a sweep job must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("payload is the original format string");
        assert!(msg.contains("boom at 3"), "original panic lost: {msg}");
    }

    #[test]
    fn parallel_map_drains_siblings_after_panic() {
        // Items other than the panicking one still run to completion.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect(), |x: i32| {
                if x == 0 {
                    panic!("early item panics");
                }
                ran.fetch_add(1, Ordering::SeqCst);
                x
            })
        });
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 15, "remaining items drained");
    }

    #[test]
    fn parallel_map_reraises_lowest_index_panic() {
        // Regression: with several panicking items, the surfaced payload
        // used to be whichever worker reached the shared slot first —
        // nondeterministic across interleavings. The drain guarantee means
        // every item runs, so the lowest panicking index must always win.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for round in 0..24 {
            let ran = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(|| {
                parallel_map((0..64).collect(), |x: i32| {
                    if x == 7 || x == 23 || x == 55 {
                        panic!("boom at {x}");
                    }
                    ran.fetch_add(1, Ordering::SeqCst);
                    x
                })
            });
            let payload = result.expect_err("panics must propagate");
            let msg = payload.downcast_ref::<String>().expect("original payload");
            assert!(
                msg.contains("boom at 7"),
                "round {round}: expected lowest-index panic, got {msg}"
            );
            assert_eq!(ran.load(Ordering::SeqCst), 61, "round {round}: queue drained");
        }
    }
}
