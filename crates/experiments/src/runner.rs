//! Shared experiment plumbing: policies by name, grid-search runs, and
//! parallel sweeps.

use crate::config::ExperimentConfig;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use tensorlights::{FifoPolicy, JobOrdering, PriorityPolicy, TlsOne, TlsRr};
use tl_cluster::{table1_placement, Placement, Table1Index};
use tl_dl::{SimOutput, Simulation};
use tl_telemetry::TelemetryConfig;
use tl_workloads::GridSearchConfig;

/// The three network scheduling policies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Default FIFO (no tc configuration) — the baseline.
    Fifo,
    /// TLs-One: static distinct priorities.
    TlsOne,
    /// TLs-RR: priorities rotated every interval T.
    TlsRr,
}

impl PolicyKind {
    /// All policies, baseline first.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Fifo, PolicyKind::TlsOne, PolicyKind::TlsRr]
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::TlsOne => "TLs-One",
            PolicyKind::TlsRr => "TLs-RR",
        }
    }

    /// Instantiate the policy. Grid-search jobs are homogeneous, so the
    /// paper's random priority assignment is used for TLs (seeded for
    /// determinism).
    pub fn build(&self, cfg: &ExperimentConfig) -> Box<dyn PriorityPolicy + Send> {
        let ordering = JobOrdering::Random { seed: cfg.seed };
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy),
            PolicyKind::TlsOne => Box::new(TlsOne::new(ordering).with_bands(cfg.num_bands)),
            PolicyKind::TlsRr => Box::new(
                TlsRr::new(ordering)
                    .with_bands(cfg.num_bands)
                    .with_interval(cfg.rr_interval),
            ),
        }
    }
}

/// One grid-search run: the paper's 21-job workload (scaled to
/// `cfg.iterations`) on the given placement under the given policy.
pub fn run_grid_search(
    cfg: &ExperimentConfig,
    placement: &Placement,
    policy: PolicyKind,
    batch_size: u32,
    window: Option<(SimTime, SimTime)>,
) -> SimOutput {
    run_grid_search_telemetry(
        cfg,
        placement,
        policy,
        batch_size,
        window,
        TelemetryConfig::disabled(),
    )
}

/// [`run_grid_search`] with an explicit telemetry configuration; the
/// structured events/metrics land in [`SimOutput::telemetry`].
pub fn run_grid_search_telemetry(
    cfg: &ExperimentConfig,
    placement: &Placement,
    policy: PolicyKind,
    batch_size: u32,
    window: Option<(SimTime, SimTime)>,
    telemetry: TelemetryConfig,
) -> SimOutput {
    let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
    wl.local_batch_size = batch_size;
    let setups = wl.build(placement);
    let mut sim_cfg = cfg.sim_config();
    sim_cfg.active_window = window;
    let mut policy = policy.build(cfg);
    Simulation::new(sim_cfg)
        .jobs(setups)
        .policy_ref(policy.as_mut())
        .telemetry(telemetry)
        .run()
}

/// Grid search on a Table I placement with the paper's batch size 4.
pub fn run_table1(cfg: &ExperimentConfig, index: Table1Index, policy: PolicyKind) -> SimOutput {
    let placement = table1_placement(index, 21, 21);
    run_grid_search(cfg, &placement, policy, 4, None)
}

/// Run independent jobs across a bounded pool of worker threads (at most
/// one per available core), preserving input order in the output. Workers
/// pull from a shared queue, so uneven job costs balance dynamically.
/// Used by the sweep experiments.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let queue = std::sync::Mutex::new(inputs.into_iter().enumerate());
    let mut results: Vec<(usize, O)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let f = &f;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let next = queue.lock().expect("sweep queue poisoned").next();
                        match next {
                            Some((i, input)) => done.push((i, f(input))),
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::Fifo.label(), "FIFO");
        assert_eq!(PolicyKind::TlsOne.label(), "TLs-One");
        assert_eq!(PolicyKind::TlsRr.label(), "TLs-RR");
    }

    #[test]
    fn policies_have_expected_names() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(PolicyKind::Fifo.build(&cfg).name(), "fifo");
        assert_eq!(PolicyKind::TlsOne.build(&cfg).name(), "tls-one");
        assert_eq!(PolicyKind::TlsRr.build(&cfg).name(), "tls-rr");
    }

    #[test]
    fn quick_grid_search_completes() {
        let cfg = ExperimentConfig::quick();
        let out = run_table1(&cfg, Table1Index(8), PolicyKind::Fifo);
        assert!(out.all_complete());
        assert_eq!(out.jobs.len(), 21);
        for j in &out.jobs {
            assert_eq!(j.iterations, cfg.iterations);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<_>>());
    }
}
