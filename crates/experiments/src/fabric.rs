//! Fabric sweep — policies × oversubscription × traffic patterns on a
//! leaf–spine fabric.
//!
//! Not from the paper: TensorLights evaluates on one non-blocking switch,
//! where flows only contend at host NICs. Real training clusters hang
//! racks off an oversubscribed leaf–spine fabric, and the traffic pattern
//! decides how much of a job's bytes cross it: the PS star pushes every
//! update through the PS host's rack uplink, ring all-reduce spreads
//! `1/k`-sized slices around the ring (crossing racks wherever the ring
//! does), and hierarchical PS reduces rack-locally so only one full
//! update per rack crosses the spine.
//!
//! This sweep runs the same cross-rack workload under every
//! (policy × oversubscription × pattern) cell on a 3-rack leaf–spine
//! topology and reports mean JCT per cell — the fabric-sensitivity
//! picture the single-switch experiments cannot show. Distinct from
//! `ablations::fabric`, which models the fabric as one aggregate core
//! capacity with no notion of racks or patterns.

use crate::config::ExperimentConfig;
use crate::orchestrator::{self, CellRecord, SweepOptions};
use crate::report::Table;
use crate::runner::PolicyKind;
use serde::{Deserialize, Serialize};
use tl_cluster::grouped_placement;
use tl_dl::{Simulation, TopologySpec, TrafficPattern};
use tl_workloads::GridSearchConfig;

/// Leaf–spine shape every cell runs on.
pub const RACKS: u32 = 3;
/// Hosts per rack.
pub const HOSTS_PER_RACK: u32 = 4;
/// Oversubscription ratios swept (1:1 is a non-blocking fabric).
pub const OVERSUBS: [f64; 3] = [1.0, 2.0, 4.0];
/// Concurrent jobs per cell.
const NUM_JOBS: u32 = 6;
/// Workers per job — spread round-robin over all 12 hosts, so every job
/// straddles all three racks.
const WORKERS_PER_JOB: u32 = 6;
/// Model update size per job, MB (network-heavy by design; see
/// [`run_cell`]).
const MODEL_MB: u64 = 64;
/// Synchronous iterations per job in a full run.
const ITERS: u64 = 30;
/// Iterations in the `--quick` smoke run.
const QUICK_ITERS: u64 = 4;

/// One (oversubscription, pattern, policy) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricRow {
    /// Fabric oversubscription ratio.
    pub oversub: f64,
    /// Traffic pattern name (`ps-star`, `ring`, `hierarchical`).
    pub pattern: String,
    /// Policy label.
    pub policy: String,
    /// Mean JCT over completed jobs, seconds.
    pub mean_jct: f64,
    /// Simulated completion time of the whole cell, seconds.
    pub makespan: f64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs launched.
    pub jobs: u32,
}

/// The whole sweep.
#[derive(Debug, Serialize)]
pub struct FabricResult {
    /// Topology shape every cell ran on.
    pub topology: String,
    /// Iterations per job in every cell.
    pub iterations: u64,
    /// One row per cell, oversubscription-major.
    pub rows: Vec<FabricRow>,
}

/// Run one cell: the cross-rack workload on `leaf-spine:3x4@oversub`
/// under `pattern` and `policy`. Public so tests can pin single cells.
pub fn run_cell(
    cfg: &ExperimentConfig,
    oversub: f64,
    pattern: TrafficPattern,
    policy: PolicyKind,
) -> FabricRow {
    let hosts = RACKS * HOSTS_PER_RACK;
    // PSes in three groups of two — one PS host per rack, so the star and
    // hierarchical patterns both have cross-rack PS traffic to schedule.
    let placement = grouped_placement(hosts, WORKERS_PER_JOB, &[2; (NUM_JOBS / 2) as usize]);
    let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
    wl.num_jobs = NUM_JOBS;
    wl.workers_per_job = WORKERS_PER_JOB;
    wl.target_global_steps = cfg.iterations * WORKERS_PER_JOB as u64;
    // The paper's ~2 MB updates make training compute-bound, which would
    // hide the fabric entirely; this sweep ships modern-sized updates with
    // light compute so cross-rack bandwidth is the contended resource.
    wl.model = tl_dl::ModelSpec::synthetic_mb(MODEL_MB);
    let setups = wl.build(&placement);
    let cell_cfg = ExperimentConfig {
        per_sample_core_secs: 0.02,
        ..cfg.clone()
    };
    let mut policy_impl = policy.build(&cell_cfg);
    let out = Simulation::new(cell_cfg.sim_config())
        .topology(TopologySpec::LeafSpine {
            racks: RACKS,
            hosts_per_rack: HOSTS_PER_RACK,
            oversub,
        })
        .pattern(pattern)
        .jobs(setups)
        .policy_ref(policy_impl.as_mut())
        .run();
    FabricRow {
        oversub,
        pattern: pattern.name().to_string(),
        policy: policy.label().to_string(),
        mean_jct: out.mean_jct_secs(),
        makespan: out.end_time.as_secs_f64(),
        completed: out.jobs.iter().filter(|j| j.completion.is_some()).count(),
        jobs: NUM_JOBS,
    }
}

/// Run the sweep: every (oversubscription × pattern × policy) cell.
/// `quick` keeps the full grid but drops to a smoke-test iteration count
/// — the grid itself is the coverage, not the run length. Panics if any
/// cell fails; `repro` uses [`run_with`] and degrades instead.
pub fn run(cfg: &ExperimentConfig, quick: bool) -> FabricResult {
    let (result, records) = run_with(cfg, quick, &SweepOptions::ephemeral());
    if let Some(bad) = records.iter().find(|c| !c.outcome.is_ok()) {
        panic!("fabric cell {} — {}", bad.label, bad.outcome);
    }
    result
}

/// [`run`] through the crash-safe orchestrator: per-cell isolation,
/// optional checkpoint ledger, and the per-cell audit trail.
pub fn run_with(
    cfg: &ExperimentConfig,
    quick: bool,
    opts: &SweepOptions,
) -> (FabricResult, Vec<CellRecord>) {
    let cell_cfg = ExperimentConfig {
        iterations: if quick { QUICK_ITERS } else { ITERS },
        ..cfg.clone()
    };
    let mut cells = Vec::new();
    for &oversub in &OVERSUBS {
        for pattern in TrafficPattern::all() {
            for policy in PolicyKind::all() {
                cells.push((oversub, pattern, policy));
            }
        }
    }
    let context = format!(
        "cfg={};jobs={NUM_JOBS};workers={WORKERS_PER_JOB};model_mb={MODEL_MB}",
        serde_json::to_string(&cell_cfg).expect("config serializes"),
    );
    let run_cfg = cell_cfg.clone();
    let out = orchestrator::run_sweep(
        "fabric",
        &context,
        opts,
        cells,
        |(oversub, pattern, policy)| {
            format!(
                "oversub={oversub},pattern={},policy={}",
                pattern.name(),
                policy.label()
            )
        },
        move |(oversub, pattern, policy)| run_cell(&run_cfg, oversub, pattern, policy),
    );
    (
        FabricResult {
            topology: format!("leaf-spine:{RACKS}x{HOSTS_PER_RACK}"),
            iterations: cell_cfg.iterations,
            rows: out.rows,
        },
        out.cells,
    )
}

impl FabricResult {
    /// Mean JCT of a cell, or `None` when the cell failed or was skipped
    /// (a degraded sweep can be missing rows).
    pub fn try_jct(&self, oversub: f64, pattern: &str, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.oversub == oversub && r.pattern == pattern && r.policy == policy)
            .map(|r| r.mean_jct)
    }

    /// Mean JCT of a cell; panics when the cell is missing.
    pub fn jct(&self, oversub: f64, pattern: &str, policy: &str) -> f64 {
        self.try_jct(oversub, pattern, policy)
            .unwrap_or_else(|| panic!("missing cell {oversub}/{pattern}/{policy}"))
    }

    /// Render the sweep as a report table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fabric sweep: {} ({} jobs x {} workers, cross-rack)",
                self.topology, NUM_JOBS, WORKERS_PER_JOB
            ),
            &["oversub", "pattern", "policy", "mean JCT (s)", "makespan (s)", "done"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{}:1", r.oversub),
                r.pattern.to_string(),
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
                format!("{:.1}", r.makespan),
                format!("{}/{}", r.completed, r.jobs),
            ]);
        }
        t
    }

    /// Headline: how much 4:1 oversubscription costs each pattern under
    /// FIFO, and whether TLs still helps on a constrained fabric. Cells
    /// missing from a degraded sweep render as `n/a`.
    pub fn summary(&self) -> String {
        let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
            (Some(n), Some(d)) if d > 0.0 => format!("{:.2}x", n / d),
            _ => "n/a".to_string(),
        };
        let cost = |pattern: &str| {
            ratio(
                self.try_jct(4.0, pattern, "FIFO"),
                self.try_jct(1.0, pattern, "FIFO"),
            )
        };
        format!(
            "fabric: 4:1 oversubscription multiplies FIFO mean JCT by \
             {} (ps-star), {} (ring), {} (hierarchical); \
             at 4:1 ps-star, TLs-One is {} FIFO \
             [leaf-spine extension: no paper counterpart]",
            cost("ps-star"),
            cost("ring"),
            cost("hierarchical"),
            ratio(
                self.try_jct(4.0, "ps-star", "TLs-One"),
                self.try_jct(4.0, "ps-star", "FIFO"),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            iterations: 3,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn quick_sweep_covers_the_grid_and_completes() {
        let r = run(&tiny_cfg(), true);
        assert_eq!(r.rows.len(), 27, "3 oversubs x 3 patterns x 3 policies");
        for row in &r.rows {
            assert_eq!(
                row.completed as u32, row.jobs,
                "cell {}:1/{}/{} left jobs incomplete",
                row.oversub, row.pattern, row.policy
            );
            assert!(row.mean_jct > 0.0 && row.makespan >= row.mean_jct);
        }
        assert!(r.table().render().contains("hierarchical"));
        assert!(r.summary().contains("oversubscription"));
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        assert!(json.contains("\"oversub\""));
    }

    #[test]
    fn oversubscription_slows_the_star_but_non_blocking_matches_flat() {
        let cfg = tiny_cfg();
        let at = |o| run_cell(&cfg, o, TrafficPattern::PsStar, PolicyKind::Fifo).mean_jct;
        let free = at(1.0);
        let tight = at(4.0);
        assert!(
            tight > free * 1.02,
            "4:1 fabric should visibly slow cross-rack PS traffic: {tight} vs {free}"
        );
    }

    #[test]
    fn cells_are_deterministic() {
        let cfg = tiny_cfg();
        let a = run_cell(&cfg, 2.0, TrafficPattern::Ring, PolicyKind::TlsRr);
        let b = run_cell(&cfg, 2.0, TrafficPattern::Ring, PolicyKind::TlsRr);
        assert_eq!(a.mean_jct.to_bits(), b.mean_jct.to_bits());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }
}
