//! Report formatting: aligned text tables and CSV emission.

use serde::Serialize;

/// A simple aligned text/CSV table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match the header count).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match headers"
        );
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}", c, w = widths[i]));
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Render as CSV (header row first). Cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage string like `-27.3%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format a ratio like `3.71x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "333333".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len(), "rows align with headers");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn markdown_structure() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo\n"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["v,1".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(-0.273), "-27.3%");
        assert_eq!(pct(0.04), "+4.0%");
        assert_eq!(ratio(3.708), "3.71x");
    }
}
