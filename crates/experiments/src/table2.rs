//! Table II — normalized CPU and NIC utilization under placement #1.
//!
//! Paper methodology: utilization is averaged over an "active window" when
//! all concurrent jobs are active, then normalized over FIFO. "TLs-One
//! improves the average CPU utilization by 4% on the host supporting PS and
//! by 13% on the hosts supporting workers ... an improvement of 20% on both
//! the inbound and outbound directions."
//!
//! The window is chosen automatically: a first pass (no window) finds the
//! earliest job completion across all three policies; the measured window
//! then spans from just after the last launch to 90% of that minimum, so
//! every job is active throughout the window under every policy.

use crate::config::ExperimentConfig;
use crate::report::{ratio, Table};
use crate::runner::{parallel_map, run_table1, PolicyKind};
use serde::Serialize;
use simcore::SimTime;
use tl_cluster::{mean_utilization, table1_placement, HostUtilization, Table1Index};

/// Utilization of one policy, split by host group.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Side {
    /// Policy label.
    pub label: &'static str,
    /// Mean utilization of hosts carrying PSes.
    pub ps_hosts: HostUtilization,
    /// Mean utilization of worker-only hosts.
    pub worker_hosts: HostUtilization,
    /// Mean utilization of all hosts.
    pub all_hosts: HostUtilization,
}

/// The table: absolute and FIFO-normalized utilization.
#[derive(Debug, Serialize)]
pub struct Table2 {
    /// Active window used.
    pub window: (f64, f64),
    /// FIFO / TLs-One / TLs-RR measurements.
    pub sides: Vec<Table2Side>,
    /// Normalized rows: `(resource, host type, TLs-One×, TLs-RR×)`.
    pub normalized: Vec<(String, String, f64, f64)>,
}

/// Run Table II at the given placement (the paper uses #1).
pub fn run(cfg: &ExperimentConfig, index: Table1Index) -> Table2 {
    // Pass 1: find a window inside every policy's run.
    let probes = parallel_map(PolicyKind::all().to_vec(), |p| {
        let out = run_table1(cfg, index, p);
        assert!(out.all_complete());
        out.jobs
            .iter()
            .map(|j| j.completion.unwrap())
            .min()
            .expect("jobs present")
    });
    let min_completion = probes.into_iter().min().expect("three probes");
    let start = SimTime::from_secs_f64(2.2); // just after the last 0.1 s-staggered launch
    let end = SimTime::from_secs_f64(min_completion.as_secs_f64() * 0.9);
    assert!(
        end > start,
        "runs too short for an active window; increase iterations"
    );

    // Pass 2: measure with the common window.
    let placement = table1_placement(index, 21, 21);
    let ps_hosts: Vec<usize> = placement
        .ps_colocation_counts()
        .keys()
        .map(|h| h.0 as usize)
        .collect();
    let worker_hosts: Vec<usize> = (0..21usize).filter(|h| !ps_hosts.contains(h)).collect();
    let all_hosts: Vec<usize> = (0..21).collect();

    let sides = parallel_map(PolicyKind::all().to_vec(), |p| {
        let placement = table1_placement(index, 21, 21);
        let out = crate::runner::run_grid_search(cfg, &placement, p, 4, Some((start, end)));
        let util = out.utilization.expect("window inside the run");
        Table2Side {
            label: p.label(),
            ps_hosts: mean_utilization(&util, &ps_hosts),
            worker_hosts: mean_utilization(&util, &worker_hosts),
            all_hosts: mean_utilization(&util, &all_hosts),
        }
    });

    let fifo = sides[0].clone();
    let mut normalized = Vec::new();
    for (resource, get) in [
        (
            "CPU (PS hosts)",
            Box::new(|s: &Table2Side| s.ps_hosts.cpu) as Box<dyn Fn(&Table2Side) -> f64>,
        ),
        ("CPU (worker hosts)", Box::new(|s| s.worker_hosts.cpu)),
        ("Net inbound (all)", Box::new(|s| s.all_hosts.net_in)),
        ("Net outbound (all)", Box::new(|s| s.all_hosts.net_out)),
    ] {
        let base = get(&fifo);
        let parts: Vec<&str> = resource.splitn(2, " (").collect();
        normalized.push((
            parts[0].to_string(),
            parts[1].trim_end_matches(')').to_string(),
            get(&sides[1]) / base,
            get(&sides[2]) / base,
        ));
    }

    Table2 {
        window: (start.as_secs_f64(), end.as_secs_f64()),
        sides,
        normalized,
    }
}

impl Table2 {
    /// Paper-style rendering (normalized; larger is better).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table II: normalized utilization (vs FIFO, larger is better)",
            &["Resource", "Host type", "TLs-One", "TLs-RR"],
        );
        for (res, host, one, rr) in &self.normalized {
            t.push_row(vec![res.clone(), host.clone(), ratio(*one), ratio(*rr)]);
        }
        t
    }

    /// Summary vs the paper's headline numbers.
    pub fn summary(&self) -> String {
        format!(
            "TLs-One: CPU PS {}, CPU workers {}, net in {}, net out {} \
             [paper: 1.04x / 1.13x / 1.20x / 1.20x]",
            ratio(self.normalized[0].2),
            ratio(self.normalized[1].2),
            ratio(self.normalized[2].2),
            ratio(self.normalized[3].2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorlights_improves_utilization() {
        let mut cfg = ExperimentConfig::quick();
        cfg.iterations = 60; // long enough for a meaningful window
        let t = run(&cfg, Table1Index(1));
        assert_eq!(t.sides.len(), 3);
        // Under heavy contention, TLs should not hurt utilization; network
        // utilization should improve.
        let (_, _, net_in_one, net_in_rr) = t.normalized[2];
        let (_, _, net_out_one, _) = t.normalized[3];
        assert!(net_in_one > 1.0, "net inbound TLs-One: {net_in_one}");
        assert!(net_in_rr > 1.0, "net inbound TLs-RR: {net_in_rr}");
        assert!(net_out_one > 1.0, "net outbound TLs-One: {net_out_one}");
        let (_, _, cpu_w_one, _) = t.normalized[1];
        assert!(cpu_w_one > 1.0, "worker CPU TLs-One: {cpu_w_one}");
        assert!(t.summary().contains("paper"));
        assert!(t.table().render().contains("TLs-RR"));
        assert!(t.window.1 > t.window.0);
    }
}
