//! Explain — per-job JCT decomposition, blame attribution, and critical
//! paths for the fabric workload.
//!
//! Not from the paper: the other experiments report *that* a policy or a
//! fabric changes JCT; this one reports *why*. Each cell reruns the
//! cross-rack fabric workload (see [`crate::fabric`]) with structured
//! telemetry on, feeds the event stream through [`tl_analysis::explain`],
//! and publishes every job's integer-nanosecond decomposition (compute /
//! exclusive network / contention / band throttle / barrier / fault
//! recovery), its blame matrix (which competitor on which link), and its
//! critical path. Every decomposition is conservation-checked: the
//! components must sum exactly to the JCT or the run panics.
//!
//! Three cells bracket the story: a non-blocking fabric (1:1 FIFO), the
//! oversubscribed fabric (4:1 FIFO — where does the extra time go?), and
//! the oversubscribed fabric under TLs-One (contention wait converted to
//! band throttling of the losers).

use crate::config::ExperimentConfig;
use crate::fabric::{HOSTS_PER_RACK, RACKS};
use crate::orchestrator::{self, CellRecord, SweepOptions};
use crate::report::Table;
use crate::runner::PolicyKind;
use serde::{Deserialize, Serialize};
use tl_analysis::AnalysisReport;
use tl_cluster::grouped_placement;
use tl_dl::{Simulation, TopologySpec, TrafficPattern};
use tl_telemetry::TelemetryConfig;
use tl_workloads::GridSearchConfig;

/// Concurrent jobs per cell (mirrors the fabric sweep).
const NUM_JOBS: u32 = 6;
/// Workers per job, spread round-robin over all hosts.
const WORKERS_PER_JOB: u32 = 6;
/// Model update size per job, MB (network-heavy by design).
const MODEL_MB: u64 = 64;
/// Synchronous iterations per job in a full run.
const ITERS: u64 = 30;
/// Iterations in the `--quick` smoke run.
const QUICK_ITERS: u64 = 4;

/// The (oversubscription, policy) cells the experiment explains, in
/// report order: non-blocking baseline, the oversubscribed fabric, and
/// the oversubscribed fabric under TLs-One.
pub const CELLS: [(f64, PolicyKind); 3] = [
    (1.0, PolicyKind::Fifo),
    (4.0, PolicyKind::Fifo),
    (4.0, PolicyKind::TlsOne),
];

/// One explained cell: the workload's run parameters plus the analyzer's
/// full per-job output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainCell {
    /// Fabric oversubscription ratio.
    pub oversub: f64,
    /// Policy label.
    pub policy: String,
    /// Mean JCT over the cell's jobs, seconds.
    pub mean_jct: f64,
    /// Per-job decomposition, blame matrix, and critical paths.
    pub report: AnalysisReport,
}

/// The whole experiment: one [`ExplainCell`] per entry of [`CELLS`].
#[derive(Debug, Serialize)]
pub struct ExplainResult {
    /// Topology shape every cell ran on.
    pub topology: String,
    /// Iterations per job in every cell.
    pub iterations: u64,
    /// One explained cell per [`CELLS`] entry, in order.
    pub cells: Vec<ExplainCell>,
}

/// Run one cell with telemetry on and explain every job. Panics if any
/// job's decomposition fails conservation — that is an analyzer bug, not
/// a data artifact. Public so tests can pin single cells.
pub fn run_cell(cfg: &ExperimentConfig, oversub: f64, policy: PolicyKind) -> ExplainCell {
    let hosts = RACKS * HOSTS_PER_RACK;
    let placement = grouped_placement(hosts, WORKERS_PER_JOB, &[2; (NUM_JOBS / 2) as usize]);
    let mut wl = GridSearchConfig::paper_scaled(cfg.iterations);
    wl.num_jobs = NUM_JOBS;
    wl.workers_per_job = WORKERS_PER_JOB;
    wl.target_global_steps = cfg.iterations * WORKERS_PER_JOB as u64;
    wl.model = tl_dl::ModelSpec::synthetic_mb(MODEL_MB);
    let setups = wl.build(&placement);
    let cell_cfg = ExperimentConfig {
        per_sample_core_secs: 0.02,
        ..cfg.clone()
    };
    let spec = TopologySpec::LeafSpine {
        racks: RACKS,
        hosts_per_rack: HOSTS_PER_RACK,
        oversub,
    };
    let mut policy_impl = policy.build(&cell_cfg);
    let sim_cfg = cell_cfg.sim_config();
    // The analyzer resolves routes and capacities itself, so it needs the
    // same topology the engine built for this cell.
    let topo = spec.build(hosts as usize, sim_cfg.link, sim_cfg.core_capacity);
    let out = Simulation::new(sim_cfg)
        .topology(spec)
        .pattern(TrafficPattern::PsStar)
        .jobs(setups)
        .policy_ref(policy_impl.as_mut())
        .telemetry(TelemetryConfig::events())
        .run();
    let report = tl_analysis::explain(&out.telemetry.events, &topo);
    report
        .check_conservation()
        .unwrap_or_else(|e| panic!("explain cell {oversub}:1/{}: {e}", policy.label()));
    assert_eq!(
        report.jobs.len(),
        NUM_JOBS as usize,
        "explain cell {oversub}:1/{}: not every job completed",
        policy.label()
    );
    ExplainCell {
        oversub,
        policy: policy.label().to_string(),
        mean_jct: out.mean_jct_secs(),
        report,
    }
}

/// Run every cell of [`CELLS`]. `quick` drops to a smoke-test iteration
/// count. `workers` forces the sweep's thread count (for determinism
/// tests); pass `None` for one worker per core. Panics if any cell
/// fails; `repro` uses [`run_with`] and degrades instead.
pub fn run_with_workers(
    cfg: &ExperimentConfig,
    quick: bool,
    workers: Option<usize>,
) -> ExplainResult {
    let opts = SweepOptions {
        workers,
        ..SweepOptions::ephemeral()
    };
    let (result, records) = run_with(cfg, quick, &opts);
    if let Some(bad) = records.iter().find(|c| !c.outcome.is_ok()) {
        panic!("explain cell {} — {}", bad.label, bad.outcome);
    }
    result
}

/// Run every cell of [`CELLS`] with the default worker pool.
pub fn run(cfg: &ExperimentConfig, quick: bool) -> ExplainResult {
    run_with_workers(cfg, quick, None)
}

/// The explain cells through the crash-safe orchestrator: per-cell
/// isolation, optional checkpoint ledger, and the per-cell audit trail.
pub fn run_with(
    cfg: &ExperimentConfig,
    quick: bool,
    opts: &SweepOptions,
) -> (ExplainResult, Vec<CellRecord>) {
    let cell_cfg = ExperimentConfig {
        iterations: if quick { QUICK_ITERS } else { ITERS },
        ..cfg.clone()
    };
    let context = format!(
        "cfg={};jobs={NUM_JOBS};workers={WORKERS_PER_JOB};model_mb={MODEL_MB}",
        serde_json::to_string(&cell_cfg).expect("config serializes"),
    );
    let run_cfg = cell_cfg.clone();
    let out = orchestrator::run_sweep(
        "explain",
        &context,
        opts,
        CELLS.to_vec(),
        |(oversub, policy)| format!("oversub={oversub},policy={}", policy.label()),
        move |(oversub, policy)| run_cell(&run_cfg, oversub, policy),
    );
    (
        ExplainResult {
            topology: format!("leaf-spine:{RACKS}x{HOSTS_PER_RACK}"),
            iterations: cell_cfg.iterations,
            cells: out.rows,
        },
        out.cells,
    )
}

/// Run one instrumented simulation (the 4:1 TLs-One cell) with the
/// engine's self-profiler on and return the per-subsystem wall-time
/// report plus the allocator's counters (so kernel-level regressions —
/// freeze rounds, heap pops, stale-key skips — are diagnosable alongside
/// the wall-time shares). Wall-clock values vary run to run; the report
/// *shape* (slots, counts) and the allocator counters are deterministic.
pub fn profile_cell(
    cfg: &ExperimentConfig,
    quick: bool,
) -> (simcore::ProfileReport, tl_net::AllocStats) {
    let cell_cfg = ExperimentConfig {
        iterations: if quick { QUICK_ITERS } else { ITERS },
        per_sample_core_secs: 0.02,
        ..cfg.clone()
    };
    let hosts = RACKS * HOSTS_PER_RACK;
    let placement = grouped_placement(hosts, WORKERS_PER_JOB, &[2; (NUM_JOBS / 2) as usize]);
    let mut wl = GridSearchConfig::paper_scaled(cell_cfg.iterations);
    wl.num_jobs = NUM_JOBS;
    wl.workers_per_job = WORKERS_PER_JOB;
    wl.target_global_steps = cell_cfg.iterations * WORKERS_PER_JOB as u64;
    wl.model = tl_dl::ModelSpec::synthetic_mb(MODEL_MB);
    let setups = wl.build(&placement);
    let mut policy_impl = PolicyKind::TlsOne.build(&cell_cfg);
    let out = Simulation::new(cell_cfg.sim_config())
        .topology(TopologySpec::LeafSpine {
            racks: RACKS,
            hosts_per_rack: HOSTS_PER_RACK,
            oversub: 4.0,
        })
        .pattern(TrafficPattern::PsStar)
        .jobs(setups)
        .policy_ref(policy_impl.as_mut())
        // Events on so the telemetry sink shows up as a profiled
        // subsystem rather than a zero-cost no-op.
        .telemetry(TelemetryConfig::events())
        .profile(true)
        .run();
    let report = out.profile.expect("profile(true) run returns a report");
    (report, out.alloc_stats)
}

impl ExplainResult {
    /// The cell for `(oversub, policy)`, or `None` when it failed or was
    /// skipped in a degraded sweep.
    pub fn try_cell(&self, oversub: f64, policy: &str) -> Option<&ExplainCell> {
        self.cells
            .iter()
            .find(|c| c.oversub == oversub && c.policy == policy)
    }

    /// The cell for `(oversub, policy)`; panics when it is missing.
    pub fn cell(&self, oversub: f64, policy: &str) -> &ExplainCell {
        self.try_cell(oversub, policy)
            .unwrap_or_else(|| panic!("missing explain cell {oversub}/{policy}"))
    }

    /// Render the per-job decompositions as a report table: one row per
    /// (cell, job), components as percentages of that job's JCT, plus the
    /// job's top blame entry.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Explain: JCT decomposition on {} ({} jobs x {} workers, ps-star)",
                self.topology, NUM_JOBS, WORKERS_PER_JOB
            ),
            &[
                "oversub", "policy", "job", "JCT (s)", "comp%", "excl%", "cont%", "thr%",
                "barr%", "other%", "top blame",
            ],
        );
        for c in &self.cells {
            for j in &c.report.jobs {
                let pct = |v: u64| {
                    if j.jct_ns == 0 {
                        0.0
                    } else {
                        100.0 * v as f64 / j.jct_ns as f64
                    }
                };
                let b = &j.breakdown;
                let top = j
                    .blame
                    .first()
                    .map(|e| format!("job{}@{} {:.1}s", e.job, e.link, e.wait_ns as f64 / 1e9))
                    .unwrap_or_else(|| "-".to_string());
                t.push_row(vec![
                    format!("{}:1", c.oversub),
                    c.policy.to_string(),
                    format!("{}", j.job),
                    format!("{:.1}", j.jct_ns as f64 / 1e9),
                    format!("{:.1}", pct(b.compute_ns)),
                    format!("{:.1}", pct(b.net_exclusive_ns)),
                    format!("{:.1}", pct(b.net_contention_ns)),
                    format!("{:.1}", pct(b.band_throttle_ns)),
                    format!("{:.1}", pct(b.barrier_wait_ns)),
                    format!("{:.1}", pct(b.fault_recovery_ns + b.other_ns)),
                    top,
                ]);
            }
        }
        t
    }

    /// Mean share (percent of JCT, averaged over a cell's jobs) of the
    /// summed components selected by `f`; `None` when the cell is missing.
    fn mean_share(
        &self,
        oversub: f64,
        policy: &str,
        f: impl Fn(&tl_analysis::JctBreakdown) -> u64,
    ) -> Option<f64> {
        let c = self.try_cell(oversub, policy)?;
        let shares: Vec<f64> = c
            .report
            .jobs
            .iter()
            .filter(|j| j.jct_ns > 0)
            .map(|j| 100.0 * f(&j.breakdown) as f64 / j.jct_ns as f64)
            .collect();
        Some(shares.iter().sum::<f64>() / shares.len().max(1) as f64)
    }

    /// Headline: where the 4:1 oversubscription penalty goes, and how
    /// TLs-One re-labels it. Cells missing from a degraded sweep render
    /// as `n/a`.
    pub fn summary(&self) -> String {
        let slow = match (self.try_cell(4.0, "FIFO"), self.try_cell(1.0, "FIFO")) {
            (Some(t), Some(f)) if f.mean_jct > 0.0 => format!("{:.2}x", t.mean_jct / f.mean_jct),
            _ => "n/a".to_string(),
        };
        let pct = |v: Option<f64>| match v {
            Some(v) => format!("{v:.0}%"),
            None => "n/a".to_string(),
        };
        let wait = |o, p| self.mean_share(o, p, |b| b.net_contention_ns + b.band_throttle_ns);
        let thr = |o, p| self.mean_share(o, p, |b| b.band_throttle_ns);
        format!(
            "explain: 4:1 ps-star FIFO is {slow} the non-blocking JCT; the \
             decomposition attributes {} of JCT to waiting on competitors \
             at 4:1 vs {} at 1:1; under TLs-One {} of JCT is explicit \
             band throttling (vs {} under FIFO) \
             [analysis extension: no paper counterpart]",
            pct(wait(4.0, "FIFO")),
            pct(wait(1.0, "FIFO")),
            pct(thr(4.0, "TLs-One")),
            pct(thr(4.0, "FIFO")),
        )
    }

    /// Full human-readable report: every cell's per-job decomposition,
    /// blame matrix, and critical-path summary.
    pub fn report_text(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "== cell {}:1 {} (mean JCT {:.1}s) ==\n{}",
                c.oversub,
                c.policy,
                c.mean_jct,
                c.report.render()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            iterations: 3,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn cell_conserves_and_explains_every_job() {
        let c = run_cell(&tiny_cfg(), 4.0, PolicyKind::Fifo);
        assert_eq!(c.report.jobs.len(), NUM_JOBS as usize);
        c.report.check_conservation().expect("conservation");
        for j in &c.report.jobs {
            assert!(j.jct_ns > 0);
            assert!(!j.critical_path.is_empty(), "job {} has no path", j.job);
            // A network-heavy oversubscribed cell must show network time.
            assert!(
                j.breakdown.net_exclusive_ns + j.breakdown.wait_ns() > 0,
                "job {} shows no network time at 4:1",
                j.job
            );
        }
    }

    #[test]
    fn oversubscription_shows_up_as_wait_not_compute() {
        let cfg = tiny_cfg();
        let free = run_cell(&cfg, 1.0, PolicyKind::Fifo);
        let tight = run_cell(&cfg, 4.0, PolicyKind::Fifo);
        let wait = |c: &ExplainCell| {
            c.report
                .jobs
                .iter()
                .map(|j| j.breakdown.wait_ns())
                .sum::<u64>()
        };
        assert!(
            wait(&tight) > wait(&free),
            "4:1 should add contention/throttle wait: {} vs {}",
            wait(&tight),
            wait(&free)
        );
    }

    #[test]
    fn result_renders_and_serializes() {
        let r = run_with_workers(&tiny_cfg(), true, Some(1));
        assert_eq!(r.cells.len(), CELLS.len());
        assert!(r.table().render().contains("top blame"));
        assert!(r.summary().contains("explain:"));
        assert!(r.report_text().contains("critical path"));
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        assert!(json.contains("\"breakdown\""));
        assert!(json.contains("\"blame\""));
    }

    #[test]
    fn profile_cell_reports_every_subsystem() {
        let (rep, alloc) = profile_cell(&tiny_cfg(), true);
        let text = rep.render();
        for slot in [
            "alloc.solve",
            "queue.heap",
            "telemetry.sink",
            "engine.handlers",
        ] {
            assert!(text.contains(slot), "profile report missing {slot}: {text}");
        }
        assert!(rep.total_nanos("engine.handlers") > 0);
        // The default (bottleneck) kernel reports its heap traffic.
        assert!(alloc.invocations > 0);
        assert!(alloc.heap_pops > 0, "bottleneck kernel should pop its heap");
    }
}
