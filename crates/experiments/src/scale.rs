//! Scale-out sweep — engine throughput at 10–25× the paper's testbed.
//!
//! Not from the paper: TensorLights stops at 21 hosts / 21 jobs. The
//! ROADMAP north-star is a simulator that stays fast at cluster scale
//! (CASSINI/MLTCP regimes), so this experiment sweeps a
//! (hosts × concurrent jobs) grid under the three policies and reports
//! *simulator* performance per cell — wall-clock, events processed,
//! events/sec, allocator counters — alongside the usual mean JCT.
//!
//! Cells run through the orchestrator with the worker count forced to one
//! (never in parallel) so per-cell wall-clock numbers are not polluted by
//! sibling cells on other cores.
//! The workload shape is fixed: every job is the paper's 20-worker
//! synchronous job, PSes are colocated into three groups (Table I #4
//! generalized), and each cell runs a fixed short iteration count — the
//! sweep measures engine cost, not convergence.

use crate::config::ExperimentConfig;
use crate::orchestrator::{self, CellRecord, SweepOptions};
use crate::report::Table;
use crate::runner::PolicyKind;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use tl_cluster::{grouped_placement, table1_group_sizes, JobPlacement, Placement, Table1Index};
use tl_dl::{SimOutput, Simulation, TopologySpec};
use tl_net::HostId;
use tl_workloads::GridSearchConfig;

/// Workers per job everywhere in the sweep (the paper's job shape).
const WORKERS_PER_JOB: u32 = 20;
/// Synchronous iterations per job in every full-grid cell.
const ITERS: u64 = 5;
/// Iterations in the `--quick` smoke cell.
const QUICK_ITERS: u64 = 4;
/// PS colocation shape: three even PS groups (Table I #4, generalized).
const PS_GROUPS: Table1Index = Table1Index(4);

/// Host counts swept by the full grid.
pub const GRID_HOSTS: [u32; 5] = [21, 63, 147, 315, 500];
/// Concurrent-job counts swept by the full grid.
pub const GRID_JOBS: [u32; 3] = [21, 80, 200];

/// XL cell (`repro --experiment scale --xl`): 10 000 hosts as a leaf-spine
/// fabric of 250 racks × 40 hosts, 5 000 jobs.
pub const XL_RACKS: u32 = 250;
/// Hosts per rack in the XL cell.
pub const XL_HOSTS_PER_RACK: u32 = 40;
/// Concurrent jobs in the XL cell.
pub const XL_JOBS: u32 = 5_000;
/// Workers per job in the XL cell. Deliberately smaller than the grid's
/// 20-worker paper job: at 5 000 concurrent jobs the realistic cluster
/// regime (CASSINI/MLTCP traces) is many small jobs, and rack-local
/// 4-worker jobs keep each rack an independent flow component — which is
/// exactly the structure the parallel allocator exploits.
pub const XL_WORKERS_PER_JOB: u32 = 4;
/// Iterations per job in the XL cell.
const XL_ITERS: u64 = 3;

/// One (hosts, jobs, policy) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Cluster size.
    pub hosts: u32,
    /// Concurrent jobs.
    pub jobs: u32,
    /// Policy label.
    pub policy: String,
    /// Wall-clock seconds spent simulating this cell.
    pub wall_secs: f64,
    /// Simulator events processed.
    pub events: u64,
    /// Events per wall-clock second (the throughput headline).
    pub events_per_sec: f64,
    /// Allocator invocations.
    pub alloc_invocations: u64,
    /// Connected components re-solved.
    pub components_solved: u64,
    /// Components whose cached rates were kept.
    pub components_retained: u64,
    /// Progressive-filling rounds across all solves.
    pub rounds: u64,
    /// Flows belonging to re-solved components.
    pub flows_touched: u64,
    /// Wall-clock milliseconds inside the rate allocator.
    pub alloc_wall_ms: f64,
    /// Mean JCT over completed jobs, seconds (sanity, not the headline).
    pub mean_jct: f64,
    /// Jobs that ran to completion.
    pub completed: usize,
}

/// The whole sweep.
#[derive(Debug, Serialize)]
pub struct ScaleResult {
    /// Iterations per job in every cell.
    pub iterations: u64,
    /// Workers per job in every cell.
    pub workers_per_job: u32,
    /// One row per (hosts, jobs, policy), hosts-major.
    pub rows: Vec<ScaleRow>,
}

/// The experiment configuration actually used for one cell: the caller's
/// seed and calibration knobs, but a fixed short iteration count and a
/// fixed 5 s TLs-RR rotation interval (the `scaled()` interval shrinks
/// with iterations and would drown large cells in rotation events).
fn cell_config(cfg: &ExperimentConfig, iters: u64) -> ExperimentConfig {
    ExperimentConfig {
        iterations: iters,
        rr_interval: SimDuration::from_secs(5),
        ..cfg.clone()
    }
}

/// Run one grid cell and return its raw [`SimOutput`]. Public so the
/// determinism tests can push the exact cell the sweep runs through
/// `parallel_map` with a forced worker count.
pub fn run_cell(cfg: &ExperimentConfig, hosts: u32, jobs: u32, policy: PolicyKind) -> SimOutput {
    run_cell_inner(cfg, hosts, jobs, policy, false)
}

/// [`run_cell`] with the engine self-profiler on; the per-subsystem
/// wall-time report lands in [`SimOutput::profile`]. Used to check the
/// profiler's allocator share against the `alloc_wall_ms` counter this
/// sweep records (`BENCH_scale.json`).
pub fn run_cell_profiled(
    cfg: &ExperimentConfig,
    hosts: u32,
    jobs: u32,
    policy: PolicyKind,
) -> SimOutput {
    run_cell_inner(cfg, hosts, jobs, policy, true)
}

fn run_cell_inner(
    cfg: &ExperimentConfig,
    hosts: u32,
    jobs: u32,
    policy: PolicyKind,
    profile: bool,
) -> SimOutput {
    let cell_cfg = cell_config(cfg, cfg.iterations);
    let placement = grouped_placement(
        hosts,
        WORKERS_PER_JOB,
        &table1_group_sizes(PS_GROUPS, jobs),
    );
    let mut wl = GridSearchConfig::paper_scaled(cell_cfg.iterations);
    wl.num_jobs = jobs;
    wl.workers_per_job = WORKERS_PER_JOB;
    let setups = wl.build(&placement);
    let sim_cfg = cell_cfg.sim_config();
    let mut policy = policy.build(&cell_cfg);
    Simulation::new(sim_cfg)
        .jobs(setups)
        .policy_ref(policy.as_mut())
        .profile(profile)
        .run()
}

fn measure(cfg: &ExperimentConfig, iters: u64, hosts: u32, jobs: u32, policy: PolicyKind) -> ScaleRow {
    let cell_cfg = ExperimentConfig {
        iterations: iters,
        ..cfg.clone()
    };
    let started = std::time::Instant::now();
    let out = run_cell(&cell_cfg, hosts, jobs, policy);
    let wall = started.elapsed().as_secs_f64();
    let a = out.alloc_stats;
    ScaleRow {
        hosts,
        jobs,
        policy: policy.label().to_string(),
        wall_secs: wall,
        events: out.events,
        events_per_sec: out.events as f64 / wall.max(1e-9),
        alloc_invocations: a.invocations,
        components_solved: a.components_solved,
        components_retained: a.components_retained,
        rounds: a.rounds,
        flows_touched: a.flows_touched,
        alloc_wall_ms: a.wall_nanos as f64 / 1e6,
        mean_jct: out.mean_jct_secs(),
        completed: out.jobs.iter().filter(|j| j.completion.is_some()).count(),
    }
}

/// Run the sweep. `quick` restricts it to the smallest grid cell
/// (21 hosts × 21 jobs, all three policies) — the check-script smoke run.
/// Panics if any cell fails; `repro` uses [`run_with`] and degrades
/// instead.
pub fn run(cfg: &ExperimentConfig, quick: bool) -> ScaleResult {
    let (result, records) = run_with(cfg, quick, &SweepOptions::ephemeral());
    if let Some(bad) = records.iter().find(|c| !c.outcome.is_ok()) {
        panic!("scale cell {} — {}", bad.label, bad.outcome);
    }
    result
}

/// [`run`] through the crash-safe orchestrator. The worker count is
/// forced to one regardless of `opts` — cells time themselves, and
/// parallel siblings would pollute the wall-clock columns — but the
/// ledger/resume/timeout machinery all applies. Note that resumed cells
/// keep the wall-clock numbers of the run that produced them.
pub fn run_with(
    cfg: &ExperimentConfig,
    quick: bool,
    opts: &SweepOptions,
) -> (ScaleResult, Vec<CellRecord>) {
    let (hosts_axis, jobs_axis, iters): (&[u32], &[u32], u64) = if quick {
        (&GRID_HOSTS[..1], &GRID_JOBS[..1], QUICK_ITERS)
    } else {
        (&GRID_HOSTS, &GRID_JOBS, ITERS)
    };
    let mut cells = Vec::new();
    for &hosts in hosts_axis {
        for &jobs in jobs_axis {
            for policy in PolicyKind::all() {
                cells.push((hosts, jobs, policy));
            }
        }
    }
    let context = format!(
        "cfg={};iters={iters};workers_per_job={WORKERS_PER_JOB};ps_groups={}",
        serde_json::to_string(cfg).expect("config serializes"),
        PS_GROUPS.0,
    );
    let sequential = SweepOptions {
        workers: Some(1),
        ..opts.clone()
    };
    let run_cfg = cfg.clone();
    let out = orchestrator::run_sweep(
        "scale",
        &context,
        &sequential,
        cells,
        |(hosts, jobs, policy)| format!("hosts={hosts},jobs={jobs},policy={}", policy.label()),
        move |(hosts, jobs, policy)| measure(&run_cfg, iters, hosts, jobs, policy),
    );
    (
        ScaleResult {
            iterations: iters,
            workers_per_job: WORKERS_PER_JOB,
            rows: out.rows,
        },
        out.cells,
    )
}

/// Rack-local placement for the XL cell. Jobs are dealt 20 per rack; each
/// rack pins two jobs' PSes to each of its ten even hosts (the paper's
/// contending-PS shape, rack-scale) and runs their workers on the
/// following hosts of the same rack. No flow ever leaves its rack, so the
/// 10 000-host cluster decomposes into 250 independent components — dirty
/// re-solves stay rack-sized and same-tick batches fan out to the
/// allocator's worker pool.
fn xl_placement() -> Placement {
    let jobs_per_rack = XL_JOBS / XL_RACKS;
    let jobs = (0..XL_JOBS)
        .map(|i| {
            let rack = i / jobs_per_rack;
            let slot = i % jobs_per_rack;
            let base = rack * XL_HOSTS_PER_RACK;
            let ps_off = (slot % (jobs_per_rack / 2)) * 4 % XL_HOSTS_PER_RACK;
            let workers = (0..XL_WORKERS_PER_JOB)
                .map(|w| HostId(base + (ps_off + 1 + slot + w) % XL_HOSTS_PER_RACK))
                .collect();
            JobPlacement::new(HostId(base + ps_off), workers)
        })
        .collect();
    Placement { jobs }
}

/// Run the XL cell (10 000 hosts × 5 000 jobs) under one policy.
pub fn run_xl_cell(cfg: &ExperimentConfig, policy: PolicyKind) -> SimOutput {
    let cell_cfg = ExperimentConfig {
        iterations: XL_ITERS,
        rr_interval: SimDuration::from_secs(5),
        topology: TopologySpec::LeafSpine {
            racks: XL_RACKS,
            hosts_per_rack: XL_HOSTS_PER_RACK,
            oversub: 2.0,
        },
        ..cfg.clone()
    };
    let placement = xl_placement();
    let mut wl = GridSearchConfig::paper_scaled(XL_ITERS);
    wl.num_jobs = XL_JOBS;
    wl.workers_per_job = XL_WORKERS_PER_JOB;
    let setups = wl.build(&placement);
    let sim_cfg = cell_cfg.sim_config();
    let mut policy = policy.build(&cell_cfg);
    Simulation::new(sim_cfg)
        .jobs(setups)
        .policy_ref(policy.as_mut())
        .run()
}

/// The XL scale row: the 10 000-host × 5 000-job cell under all three
/// policies (`repro --experiment scale --xl`). Panics if any job fails to
/// complete — an unfinished job at this scale means the engine broke, not
/// that the workload was slow.
pub fn run_xl(cfg: &ExperimentConfig) -> ScaleResult {
    let rows = PolicyKind::all()
        .iter()
        .map(|&policy| {
            let started = std::time::Instant::now();
            let out = run_xl_cell(cfg, policy);
            let wall = started.elapsed().as_secs_f64();
            let a = out.alloc_stats;
            let completed = out.jobs.iter().filter(|j| j.completion.is_some()).count();
            assert_eq!(
                completed,
                XL_JOBS as usize,
                "XL cell ({}) finished only {completed}/{XL_JOBS} jobs",
                policy.label()
            );
            ScaleRow {
                hosts: XL_RACKS * XL_HOSTS_PER_RACK,
                jobs: XL_JOBS,
                policy: policy.label().to_string(),
                wall_secs: wall,
                events: out.events,
                events_per_sec: out.events as f64 / wall.max(1e-9),
                alloc_invocations: a.invocations,
                components_solved: a.components_solved,
                components_retained: a.components_retained,
                rounds: a.rounds,
                flows_touched: a.flows_touched,
                alloc_wall_ms: a.wall_nanos as f64 / 1e6,
                mean_jct: out.mean_jct_secs(),
                completed,
            }
        })
        .collect();
    ScaleResult {
        iterations: XL_ITERS,
        workers_per_job: XL_WORKERS_PER_JOB,
        rows,
    }
}

impl ScaleResult {
    /// Render the sweep as a report table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Scale sweep: simulator throughput per (hosts x jobs) cell",
            &[
                "hosts", "jobs", "policy", "wall (s)", "events", "kev/s", "solved",
                "retained", "alloc (ms)", "mean JCT (s)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.hosts.to_string(),
                r.jobs.to_string(),
                r.policy.to_string(),
                format!("{:.3}", r.wall_secs),
                r.events.to_string(),
                format!("{:.1}", r.events_per_sec / 1e3),
                r.components_solved.to_string(),
                r.components_retained.to_string(),
                format!("{:.1}", r.alloc_wall_ms),
                format!("{:.1}", r.mean_jct),
            ]);
        }
        t
    }

    /// A canonical, fully deterministic JSON rendering of the sweep for
    /// byte-identity comparisons: every wall-clock column (`wall_secs`,
    /// `events_per_sec`, `alloc_wall_ms`) is excluded and every simulated
    /// float is captured as its IEEE-754 bit pattern. Two runs of the same
    /// sweep — at any allocator worker count (`TL_WORKERS`) — must produce
    /// byte-identical output; the check-script smoke compares exactly this
    /// file across worker settings.
    pub fn canonical_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"iterations\":{},\"workers_per_job\":{},\"rows\":[",
            self.iterations, self.workers_per_job
        );
        for (k, r) in self.rows.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"hosts\":{},\"jobs\":{},\"policy\":\"{}\",\"events\":{},\
                 \"alloc\":[{},{},{},{},{}],\"mean_jct_bits\":{},\"completed\":{}}}",
                r.hosts,
                r.jobs,
                r.policy,
                r.events,
                r.alloc_invocations,
                r.components_solved,
                r.components_retained,
                r.rounds,
                r.flows_touched,
                r.mean_jct.to_bits(),
                r.completed
            );
        }
        s.push_str("]}");
        s
    }

    /// One-line summary: total wall, total events, and the largest cell.
    pub fn summary(&self) -> String {
        let total_wall: f64 = self.rows.iter().map(|r| r.wall_secs).sum();
        let total_events: u64 = self.rows.iter().map(|r| r.events).sum();
        let largest = self
            .rows
            .iter()
            .max_by_key(|r| (r.hosts, r.jobs))
            .expect("sweep has rows");
        format!(
            "scale: {} cells, {total_events} events in {total_wall:.1} s wall; \
             largest cell ({}h x {}j, {}) {:.2} s at {:.0} kev/s",
            self.rows.len(),
            largest.hosts,
            largest.jobs,
            largest.policy,
            largest.wall_secs,
            largest.events_per_sec / 1e3,
        )
    }
}

/// A canonical, fully deterministic JSON rendering of a [`SimOutput`] for
/// byte-identity assertions: job lifecycles and engine counters with every
/// float captured as its exact IEEE-754 bit pattern. Wall-clock fields
/// (`AllocStats::wall_nanos`) are deliberately excluded — they are real
/// time, not simulated time.
pub fn canonical_json(out: &SimOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"end_time\":{},\"events\":{},\"jobs\":[",
        out.end_time.as_nanos(),
        out.events
    );
    for (k, j) in out.jobs.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"completion\":{},\"jct_bits\":{},\"steps\":{}}}",
            j.completion.map(|t| t.as_nanos()).unwrap_or(u64::MAX),
            j.jct_secs().map(f64::to_bits).unwrap_or(0),
            j.global_steps
        );
    }
    let a = out.alloc_stats;
    let _ = write!(
        s,
        "],\"alloc\":[{},{},{},{},{},{}]}}",
        a.invocations, a.full_solves, a.components_solved, a.components_retained, a.rounds,
        a.flows_touched
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::parallel_map_with_workers;
    use tl_dl::TopologySpec;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            iterations: 2,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn quick_sweep_completes_every_job() {
        let cfg = ExperimentConfig {
            iterations: QUICK_ITERS,
            ..ExperimentConfig::quick()
        };
        let out = run_cell(&cfg, GRID_HOSTS[0], GRID_JOBS[0], PolicyKind::Fifo);
        assert!(out.all_complete());
        assert_eq!(out.jobs.len(), GRID_JOBS[0] as usize);
    }

    #[test]
    fn sweep_rows_cover_the_grid() {
        let result = run(&tiny_cfg(), true);
        assert_eq!(result.rows.len(), 3, "quick = smallest cell x 3 policies");
        assert!(result.rows.iter().all(|r| r.hosts == 21 && r.jobs == 21));
        assert!(result.rows.iter().all(|r| r.events > 0 && r.completed == 21));
        let t = result.table();
        assert!(t.render().contains("TLs-RR"));
        assert!(result.summary().contains("scale:"));
    }

    #[test]
    fn profiler_agrees_with_alloc_stats_on_smallest_cell() {
        // The self-profiler's "alloc.solve" slot and the allocator's own
        // wall_nanos counter time the same region through different
        // mechanisms; they must agree to well within 2x even on a small
        // cell (wall-clock noise dominates at this size).
        let cfg = tiny_cfg();
        let out = run_cell_profiled(&cfg, GRID_HOSTS[0], GRID_JOBS[0], PolicyKind::TlsRr);
        let rep = out.profile.expect("profiled cell returns a report");
        let solve = rep.total_nanos("alloc.solve");
        let counter = out.alloc_stats.wall_nanos;
        assert!(solve > 0 && counter > 0);
        let ratio = solve as f64 / counter as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "profiler {solve} ns vs alloc_stats {counter} ns (ratio {ratio:.2})"
        );
        // The allocator runs inside the handler loop, so its share of
        // engine.handlers must be a meaningful fraction, not ~0 or >1.
        let share = rep
            .share_of("alloc.solve", "engine.handlers")
            .expect("both slots populated");
        assert!(share > 0.05 && share < 1.0, "allocator share {share:.3}");
    }

    #[test]
    #[ignore = "multi-second release-mode validation of BENCH_scale.json's allocator share; run with cargo test --release -- --ignored"]
    fn profiled_share_matches_bench_scale_at_500x200() {
        // BENCH_scale.json records alloc_wall 1.60 s of 2.31 s total wall
        // (~70%) at the largest cell. The profiler must reproduce that
        // picture from inside the engine.
        let cfg = ExperimentConfig {
            iterations: ITERS,
            ..ExperimentConfig::default()
        };
        let out = run_cell_profiled(&cfg, 500, 200, PolicyKind::TlsRr);
        let rep = out.profile.expect("profiled cell returns a report");
        let share = rep
            .share_of("alloc.solve", "engine.handlers")
            .expect("both slots populated");
        println!(
            "500x200 TLs-RR: alloc.solve {:.2} s / engine.handlers {:.2} s = {:.1}% (alloc_stats wall {:.2} s)",
            rep.total_nanos("alloc.solve") as f64 / 1e9,
            rep.total_nanos("engine.handlers") as f64 / 1e9,
            100.0 * share,
            out.alloc_stats.wall_nanos as f64 / 1e9,
        );
        assert!(
            (0.5..0.95).contains(&share),
            "allocator share {share:.3} far from BENCH_scale.json's ~0.70"
        );
    }

    #[test]
    fn deterministic_across_parallel_map_worker_counts() {
        // The satellite guarantee: a sweep cell run under `parallel_map`
        // serializes to byte-identical JSON whether the pool had one
        // worker or many — thread count can never leak into results.
        let cfg = tiny_cfg();
        let run_with = |workers: usize| -> Vec<String> {
            let cells: Vec<PolicyKind> = PolicyKind::all().to_vec();
            parallel_map_with_workers(cells, Some(workers), |policy| {
                canonical_json(&run_cell(&cfg, GRID_HOSTS[0], GRID_JOBS[0], policy))
            })
        };
        let sequential = run_with(1);
        let threaded = run_with(4);
        assert!(sequential[0].contains("\"jobs\":["));
        assert_eq!(sequential, threaded, "worker count changed results");
    }

    #[test]
    fn canonical_output_is_identical_across_alloc_worker_counts() {
        // The tentpole guarantee at the experiment level: the allocator's
        // worker-pool size (`ExperimentConfig::alloc_workers`, `TL_WORKERS`
        // in the shell) may only move wall time, never results. The
        // check-script smoke repeats this comparison cross-process on
        // `scale.canonical.json`; this is the in-process version over one
        // quick cell, including a leaf-spine run where rack-local
        // components actually fan out to the pool.
        let cell = |workers: usize, topo: TopologySpec| {
            let cfg = ExperimentConfig {
                alloc_workers: Some(workers),
                topology: topo,
                ..tiny_cfg()
            };
            canonical_json(&run_cell(&cfg, GRID_HOSTS[0], GRID_JOBS[0], PolicyKind::TlsRr))
        };
        let spine = TopologySpec::LeafSpine {
            racks: 7,
            hosts_per_rack: 3,
            oversub: 2.0,
        };
        for topo in [TopologySpec::SingleSwitch, spine] {
            let one = cell(1, topo);
            assert!(one.contains("\"alloc\":["));
            for workers in [2, 4, 8] {
                assert_eq!(
                    one,
                    cell(workers, topo),
                    "alloc_workers={workers} changed results on {topo:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_output_is_identical_across_kernels() {
        // The PR 10 tentpole guarantee at the experiment level: the
        // max-min kernel (`ExperimentConfig::alloc_kernel`, `TL_KERNEL`
        // in the shell) may only move wall time, never results — the
        // canonical JSON (rates, completions, *and* the shared round
        // counters) must match byte for byte. The check-script kernel
        // A/B smoke repeats this cross-process on `scale.canonical.json`.
        use tl_dl::AllocKernel;
        let cell = |kernel: AllocKernel, topo: TopologySpec| {
            let cfg = ExperimentConfig {
                alloc_kernel: Some(kernel),
                // Force intra-component sharding onto the bottleneck
                // kernel's parallel path even at quick-cell sizes.
                par_min_component_flows: Some(8),
                alloc_workers: Some(4),
                topology: topo,
                ..tiny_cfg()
            };
            canonical_json(&run_cell(&cfg, GRID_HOSTS[0], GRID_JOBS[0], PolicyKind::TlsRr))
        };
        let spine = TopologySpec::LeafSpine {
            racks: 7,
            hosts_per_rack: 3,
            oversub: 2.0,
        };
        for topo in [TopologySpec::SingleSwitch, spine] {
            let legacy = cell(AllocKernel::Legacy, topo);
            assert!(legacy.contains("\"alloc\":["));
            assert_eq!(
                legacy,
                cell(AllocKernel::Bottleneck, topo),
                "kernel changed results on {topo:?}"
            );
        }
    }

    #[test]
    fn deterministic_after_kill_mid_sweep_and_resume() {
        // Extends `deterministic_across_parallel_map_worker_counts` to the
        // crash path: the same cells through the orchestrator, with the
        // ledger truncated after the first completed cell (a simulated
        // kill -9 mid-append), then resumed under a different worker
        // count. The merged canonical JSON must be byte-identical to the
        // uninterrupted run.
        let cfg = tiny_cfg();
        let dir = std::env::temp_dir().join(format!("tl-scale-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sweep = |resume: bool, workers: usize, ledger: bool| {
            let cfg = cfg.clone();
            let opts = SweepOptions {
                workers: Some(workers),
                ledger_dir: ledger.then(|| dir.clone()),
                resume,
                ..SweepOptions::default()
            };
            orchestrator::run_sweep(
                "scale-determinism",
                "kill-resume",
                &opts,
                PolicyKind::all().to_vec(),
                |p| p.label().to_string(),
                move |policy| canonical_json(&run_cell(&cfg, GRID_HOSTS[0], GRID_JOBS[0], policy)),
            )
        };
        let uninterrupted = sweep(false, 1, false);

        // Full checkpointed run, then chop the ledger down to the header
        // plus one completed cell and half of the next line.
        sweep(false, 1, true);
        let ledger = dir.join("scale-determinism.cells.jsonl");
        let contents = std::fs::read_to_string(&ledger).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 cells");
        let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..lines[2].len() / 2]);
        std::fs::write(&ledger, torn).unwrap();

        let resumed = sweep(true, 4, true);
        assert_eq!(resumed.cells.iter().filter(|c| c.from_ledger).count(), 1);
        assert_eq!(
            uninterrupted.rows, resumed.rows,
            "kill-mid-sweep + resume changed the merged output"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
