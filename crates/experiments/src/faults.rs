//! Failure experiments — JCT under injected faults.
//!
//! Not from the paper: TensorLights is evaluated on a healthy testbed.
//! This experiment asks how the three policies hold up when the cluster is
//! *not* healthy — host crashes, NIC brownouts, PS process failures, and
//! tlsd control-plane outages — by sweeping a seeded [`FaultPlan`]
//! intensity and reporting mean and tail JCT per policy. Fault timelines
//! are deterministic per seed, so the sweep is exactly reproducible.

use crate::config::ExperimentConfig;
use crate::orchestrator::{self, CellRecord, SweepOptions};
use crate::report::Table;
use crate::runner::PolicyKind;
use serde::{Deserialize, Serialize};
use simcore::SampleSet;
use tl_cluster::{table1_placement, Placement, Table1Index};
use tl_dl::{BarrierLossPolicy, FaultPlan, SimOutput, Simulation};
use tl_telemetry::TelemetryConfig;
use tl_workloads::GridSearchConfig;

/// One (intensity, policy) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRow {
    /// Fault intensity (expected faults ≈ 4 × intensity).
    pub intensity: f64,
    /// Policy label.
    pub policy: String,
    /// Mean JCT over completed jobs, seconds.
    pub mean_jct: f64,
    /// 99th-percentile JCT, seconds; `None` when a fault plan kills every
    /// job in the window (serializes as `null`, renders as `NaN`).
    pub p99_jct: Option<f64>,
    /// Retry attempts observed (blocked work re-dispatched).
    pub retries: u64,
    /// Barrier-loss events (workers dropped from their barrier).
    pub workers_lost: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
}

/// The failure sweep: intensities × the three policies.
#[derive(Debug, Serialize)]
pub struct FaultsResult {
    /// Barrier policy applied on worker loss.
    pub barrier_loss: &'static str,
    /// One row per (intensity, policy), intensity-major.
    pub rows: Vec<FaultRow>,
}

fn run_one(
    cfg: &ExperimentConfig,
    placement: &Placement,
    policy: PolicyKind,
    plan: FaultPlan,
    loss: BarrierLossPolicy,
    events: bool,
) -> SimOutput {
    let setups = GridSearchConfig::paper_scaled(cfg.iterations).build(placement);
    let mut sim_cfg = cfg.sim_config();
    sim_cfg.faults = plan;
    sim_cfg.barrier_loss = loss;
    let mut policy = policy.build(cfg);
    Simulation::new(sim_cfg)
        .jobs(setups)
        .policy_ref(policy.as_mut())
        .telemetry(TelemetryConfig {
            events,
            metrics_interval: None,
        })
        .run()
}

fn loss_label(loss: BarrierLossPolicy) -> &'static str {
    match loss {
        BarrierLossPolicy::StallUntilRecovery => "stall-until-recovery",
        BarrierLossPolicy::DropAndContinue => "drop-and-continue",
    }
}

/// Run the failure sweep at the given intensities (0 = healthy baseline)
/// under barrier-loss policy `loss`, on Table I placement #1. Panics if
/// any cell fails; `repro` uses [`run_with`] and degrades instead.
pub fn run(cfg: &ExperimentConfig, intensities: &[f64], loss: BarrierLossPolicy) -> FaultsResult {
    let (result, records) = run_with(cfg, intensities, loss, &SweepOptions::ephemeral());
    if let Some(bad) = records.iter().find(|c| !c.outcome.is_ok()) {
        panic!("faults cell {} — {}", bad.label, bad.outcome);
    }
    result
}

/// [`run`] through the crash-safe orchestrator. The sweep name carries
/// the barrier-loss policy (`faults-stall-until-recovery` /
/// `faults-drop-and-continue`) so the two variants keep separate ledgers.
pub fn run_with(
    cfg: &ExperimentConfig,
    intensities: &[f64],
    loss: BarrierLossPolicy,
    opts: &SweepOptions,
) -> (FaultsResult, Vec<CellRecord>) {
    let placement = table1_placement(Table1Index(1), 21, 21);
    // A healthy FIFO run pins the fault horizon: seeded faults land inside
    // the busiest 60% of the schedule instead of after everything drained.
    let baseline = run_one(
        cfg,
        &placement,
        PolicyKind::Fifo,
        FaultPlan::default(),
        loss,
        false,
    );
    let horizon = baseline.end_time.as_secs_f64() * 0.6;
    let cells: Vec<(f64, PolicyKind)> = intensities
        .iter()
        .flat_map(|&x| PolicyKind::all().into_iter().map(move |p| (x, p)))
        .collect();
    let context = format!(
        "cfg={};horizon={horizon};loss={}",
        serde_json::to_string(cfg).expect("config serializes"),
        loss_label(loss),
    );
    let run_cfg = cfg.clone();
    let out = orchestrator::run_sweep(
        &format!("faults-{}", loss_label(loss)),
        &context,
        opts,
        cells,
        |(intensity, policy)| format!("intensity={intensity},policy={}", policy.label()),
        move |(intensity, policy)| {
            let plan = FaultPlan::seeded(run_cfg.seed, intensity, 21, 21, horizon);
            let out = run_one(&run_cfg, &placement, policy, plan, loss, true);
            let mut jct = SampleSet::new();
            for j in out.jobs.iter().filter_map(|j| j.jct_secs()) {
                jct.push(j);
            }
            FaultRow {
                intensity,
                policy: policy.label().to_string(),
                mean_jct: jct.mean(),
                // None (rendered as NaN) when a fault plan kills every job
                // in the window — not a fake "p99 = 0 s".
                p99_jct: jct.quantile(0.99),
                retries: out.telemetry.events_of_kind("retry_attempt").len() as u64,
                workers_lost: out.telemetry.events_of_kind("worker_lost").len() as u64,
                completed: out.jobs.iter().filter(|j| j.completion.is_some()).count(),
            }
        },
    );
    (
        FaultsResult {
            barrier_loss: loss_label(loss),
            rows: out.rows,
        },
        out.cells,
    )
}

impl FaultsResult {
    /// Paper-style rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Failure sweep: JCT under faults ({})", self.barrier_loss),
            &[
                "intensity",
                "policy",
                "mean JCT (s)",
                "p99 JCT (s)",
                "retries",
                "workers lost",
                "completed",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{:.1}", r.intensity),
                r.policy.to_string(),
                format!("{:.1}", r.mean_jct),
                r.p99_jct
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "NaN".to_string()),
                r.retries.to_string(),
                r.workers_lost.to_string(),
                r.completed.to_string(),
            ]);
        }
        t
    }

    /// Headline: how much the heaviest fault load stretches each policy's
    /// mean JCT relative to its healthy baseline.
    pub fn summary(&self) -> String {
        let max_x = self
            .rows
            .iter()
            .map(|r| r.intensity)
            .fold(f64::NEG_INFINITY, f64::max);
        let stretch = |label: &str| -> Option<f64> {
            let base = self
                .rows
                .iter()
                .find(|r| r.policy == label && r.intensity == 0.0)?;
            let top = self
                .rows
                .iter()
                .find(|r| r.policy == label && r.intensity == max_x)?;
            Some(top.mean_jct / base.mean_jct)
        };
        let fmt = |x: Option<f64>| match x {
            Some(v) => format!("{v:.2}x"),
            None => "n/a".into(),
        };
        format!(
            "mean-JCT stretch at intensity {:.1} vs healthy — FIFO: {}, TLs-One: {}, TLs-RR: {} \
             [no paper counterpart: robustness extension]",
            max_x,
            fmt(stretch("FIFO")),
            fmt(stretch("TLs-One")),
            fmt(stretch("TLs-RR")),
        )
    }
}

/// Telemetry events from one faulted TLs-RR run at the top intensity, for
/// `repro --experiment faults --trace-out`.
pub fn telemetry_events(
    cfg: &ExperimentConfig,
    intensity: f64,
    loss: BarrierLossPolicy,
) -> Vec<tl_telemetry::TimedEvent> {
    let placement = table1_placement(Table1Index(1), 21, 21);
    let baseline = run_one(
        cfg,
        &placement,
        PolicyKind::Fifo,
        FaultPlan::default(),
        loss,
        false,
    );
    let horizon = baseline.end_time.as_secs_f64() * 0.6;
    let plan = FaultPlan::seeded(cfg.seed, intensity, 21, 21, horizon);
    let out = run_one(cfg, &placement, PolicyKind::TlsRr, plan, loss, true);
    out.telemetry.events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_faults_and_completions() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &[0.0, 1.0, 2.0], BarrierLossPolicy::DropAndContinue);
        assert_eq!(r.rows.len(), 9, "3 intensities x 3 policies");
        // Healthy baseline: no fault machinery engaged.
        for row in r.rows.iter().filter(|r| r.intensity == 0.0) {
            assert_eq!(row.retries, 0);
            assert_eq!(row.workers_lost, 0);
            assert_eq!(row.completed, 21);
        }
        // Faulted rows: recovery semantics visible in the event stream.
        let faulted: Vec<_> = r.rows.iter().filter(|r| r.intensity > 0.0).collect();
        assert!(
            faulted.iter().any(|r| r.retries > 0),
            "blocked work must retry somewhere in the sweep"
        );
        assert!(
            faulted.iter().any(|r| r.workers_lost > 0),
            "drop-and-continue must shed at least one worker"
        );
        for row in &faulted {
            assert_eq!(row.completed, 21, "every job survives its faults");
        }
        assert!(r.table().render().contains("TLs-RR"));
        assert!(r.summary().contains("stretch"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = ExperimentConfig::quick();
        let a = run(&cfg, &[1.0], BarrierLossPolicy::StallUntilRecovery);
        let b = run(&cfg, &[1.0], BarrierLossPolicy::StallUntilRecovery);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.mean_jct.to_bits(), y.mean_jct.to_bits());
            assert_eq!(x.p99_jct.map(f64::to_bits), y.p99_jct.map(f64::to_bits));
            assert_eq!(x.retries, y.retries);
        }
    }
}
