//! # tl-experiments — the reproduction harness
//!
//! One module per table/figure of the TensorLights paper, plus shared
//! plumbing. Each module exposes `run(...)` producing a serializable result
//! with paper-style `table()` rendering and a `summary()` quoting the
//! paper's headline number next to the measured one. The `repro` binary
//! drives them; see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for measured-vs-paper results.

#![warn(missing_docs)]

pub mod ablations;
pub mod charts;
pub mod config;
pub mod explain;
pub mod fabric;
pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod orchestrator;
pub mod report;
pub mod runner;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod validate;

pub use config::ExperimentConfig;
pub use orchestrator::{
    install_sigint_handler, interrupted, run_isolated, run_sweep, write_atomic, CellRecord,
    SweepOptions, SweepOutcome,
};
pub use runner::{
    parallel_map, parallel_map_with_workers, run_grid_search, run_grid_search_telemetry,
    run_table1, PolicyKind,
};
