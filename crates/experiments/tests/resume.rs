//! Full-stack kill-and-resume determinism: a real fabric sweep whose
//! ledger is truncated mid-sweep (simulating a crash) must, after resume,
//! serialize to merged JSON byte-identical to an uninterrupted run —
//! regardless of worker count. The toy-cell equivalents live in
//! `tests/orchestrator.rs`.

use tl_experiments::fabric;
use tl_experiments::{ExperimentConfig, SweepOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tl-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &std::path::Path, resume: bool, workers: usize) -> SweepOptions {
    SweepOptions {
        workers: Some(workers),
        ledger_dir: Some(dir.to_path_buf()),
        resume,
        ..SweepOptions::default()
    }
}

#[test]
fn fabric_merged_json_survives_kill_and_resume_byte_identical() {
    let cfg = ExperimentConfig {
        iterations: 2,
        ..ExperimentConfig::quick()
    };

    // Reference: one worker, uninterrupted.
    let dir_a = temp_dir("ref");
    let (ref_result, ref_records) = fabric::run_with(&cfg, true, &opts(&dir_a, false, 1));
    assert!(ref_records.iter().all(|c| c.outcome.is_ok()));
    assert_eq!(ref_result.rows.len(), 27, "3 oversubs x 3 patterns x 3 policies");
    let ref_json = serde_json::to_string_pretty(&ref_result).unwrap();

    // Victim: four workers, then a simulated crash — the ledger keeps the
    // header, nine complete entries, and half of the tenth (a torn append).
    let dir_b = temp_dir("victim");
    fabric::run_with(&cfg, true, &opts(&dir_b, false, 4));
    let ledger = dir_b.join("fabric.cells.jsonl");
    let contents = std::fs::read_to_string(&ledger).unwrap();
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 28, "header + 27 cells");
    let mut torn = lines[..10].join("\n");
    torn.push('\n');
    torn.push_str(&lines[10][..lines[10].len() / 2]);
    std::fs::write(&ledger, &torn).unwrap();

    // Resume with a different worker count than the reference run.
    let (resumed, records) = fabric::run_with(&cfg, true, &opts(&dir_b, true, 4));
    assert_eq!(
        records.iter().filter(|c| c.from_ledger).count(),
        9,
        "the intact ledger prefix loads without re-execution"
    );
    assert!(records.iter().all(|c| c.outcome.is_ok()));
    assert_eq!(
        serde_json::to_string_pretty(&resumed).unwrap(),
        ref_json,
        "resumed merged JSON must be byte-identical to the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
