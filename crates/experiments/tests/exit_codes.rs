//! The `repro` binary's documented exit-code contract: 0 everything
//! completed, 2 usage error, 4 sweep cells failed after the run drained
//! (with a per-cell failure report on stderr). Exit 3 (validation
//! divergence) needs a divergence to exist and is exercised by the
//! differential-validation suite instead; exit 130 (SIGINT) is covered by
//! the orchestrator's interrupt unit tests.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tl-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn usage_errors_exit_2() {
    let out = repro().arg("--bogus-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));

    let out = repro().args(["--experiment", "nope"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = repro().arg("--resume").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "--resume without a ledger dir is a usage error");

    let out = repro().args(["--cell-timeout", "-1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = repro().arg("--iterations").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing flag value is a usage error");
}

#[test]
fn failed_cell_exits_4_then_resume_recovers_to_0() {
    let dir = temp_dir("resume");
    let json = dir.to_str().unwrap();

    // A cell panics mid-sweep: the run drains, reports the failure, and
    // exits 4 — with the surviving cells checkpointed in the ledger.
    let out = repro()
        .args(["--experiment", "scale", "--quick", "--json", json])
        .env("TL_SWEEP_PANIC_AT", "scale:0")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did not complete") && stderr.contains("injected test fault"),
        "per-cell failure report missing: {stderr}"
    );
    let ledger = std::fs::read_to_string(dir.join("scale.cells.jsonl")).unwrap();
    assert!(ledger.contains("\"Panicked\""), "failure checkpointed in the ledger");

    // The fault is gone; resume re-runs only the failed cell and exits 0.
    let out = repro()
        .args(["--experiment", "scale", "--quick", "--json", json, "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "resume after the fault cleared must pass");
    let merged = std::fs::read(dir.join("scale.json")).unwrap();

    // A second resume is a pure ledger load and reproduces the merged
    // JSON byte-for-byte.
    let out = repro()
        .args(["--experiment", "scale", "--quick", "--json", json, "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read(dir.join("scale.json")).unwrap(), merged);

    std::fs::remove_dir_all(&dir).unwrap();
}
