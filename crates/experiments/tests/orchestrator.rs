//! Orchestrator checkpoint/resume behavior on toy cells: ledger round
//! trips, torn-tail recovery, failure retry, and context fencing. The
//! full-stack sweep equivalents (real fabric cells, merged-JSON byte
//! identity) live in `tests/resume.rs`.

use simcore::CellOutcome;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tl_experiments::orchestrator::{run_sweep, SweepOptions, SweepOutcome};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tl-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &std::path::Path, resume: bool, workers: usize) -> SweepOptions {
    SweepOptions {
        workers: Some(workers),
        ledger_dir: Some(dir.to_path_buf()),
        resume,
        ..SweepOptions::default()
    }
}

fn square_sweep(
    dir: &std::path::Path,
    resume: bool,
    workers: usize,
    executed: &Arc<AtomicUsize>,
) -> SweepOutcome<i64> {
    let executed = Arc::clone(executed);
    run_sweep(
        "toy",
        "squares-v1",
        &opts(dir, resume, workers),
        (0..10).collect(),
        |c| format!("cell={c}"),
        move |c: i64| {
            executed.fetch_add(1, Ordering::SeqCst);
            c * c
        },
    )
}

#[test]
fn resume_loads_completed_cells_without_re_executing() {
    let dir = temp_dir("resume-noop");
    let executed = Arc::new(AtomicUsize::new(0));
    let first = square_sweep(&dir, false, 2, &executed);
    assert_eq!(first.rows, (0..10).map(|c| c * c).collect::<Vec<_>>());
    assert_eq!(executed.load(Ordering::SeqCst), 10);

    let second = square_sweep(&dir, true, 2, &executed);
    assert_eq!(second.rows, first.rows);
    assert_eq!(executed.load(Ordering::SeqCst), 10, "no cell re-executed");
    assert!(second.cells.iter().all(|c| c.from_ledger && c.outcome.is_ok()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_line_is_dropped_and_healed() {
    let dir = temp_dir("torn");
    let executed = Arc::new(AtomicUsize::new(0));
    square_sweep(&dir, false, 1, &executed);
    let ledger = dir.join("toy.cells.jsonl");

    // Simulate a crash mid-append: keep the header + 4 entries + half of
    // the 5th entry, no trailing newline.
    let contents = std::fs::read_to_string(&ledger).unwrap();
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 11, "header + 10 cells");
    let mut torn = lines[..5].join("\n");
    torn.push('\n');
    torn.push_str(&lines[5][..lines[5].len() / 2]);
    std::fs::write(&ledger, &torn).unwrap();

    executed.store(0, Ordering::SeqCst);
    let resumed = square_sweep(&dir, true, 4, &executed);
    assert_eq!(resumed.rows, (0..10).map(|c| c * c).collect::<Vec<_>>());
    // 4 intact entries load; the torn 5th and the lost tail re-run.
    assert_eq!(executed.load(Ordering::SeqCst), 6);
    assert_eq!(resumed.cells.iter().filter(|c| c.from_ledger).count(), 4);

    // The healed ledger now parses completely and a further resume is a
    // pure load.
    executed.store(0, Ordering::SeqCst);
    let third = square_sweep(&dir, true, 1, &executed);
    assert_eq!(executed.load(Ordering::SeqCst), 0);
    assert_eq!(third.rows, resumed.rows);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_cells_are_recorded_and_retried_on_resume() {
    let dir = temp_dir("retry");
    let poison = Arc::new(AtomicUsize::new(1)); // 1 => cell 3 panics
    let run = |resume: bool| {
        let poison = Arc::clone(&poison);
        run_sweep(
            "toy-retry",
            "v1",
            &opts(&dir, resume, 2),
            (0..6).collect(),
            |c| format!("cell={c}"),
            move |c: i64| {
                if c == 3 && poison.load(Ordering::SeqCst) == 1 {
                    panic!("transient failure");
                }
                c + 100
            },
        )
    };
    let first: SweepOutcome<i64> = run(false);
    assert_eq!(first.rows.len(), 5);
    assert!(matches!(first.cells[3].outcome, CellOutcome::Panicked { .. }));
    let ledger = std::fs::read_to_string(dir.join("toy-retry.cells.jsonl")).unwrap();
    assert!(ledger.contains("\"Panicked\""), "failure checkpointed for post-mortem");

    // The fault clears (e.g. a code fix); resume retries only cell 3.
    poison.store(0, Ordering::SeqCst);
    let second = run(true);
    assert_eq!(second.rows, (0..6).map(|c| c + 100).collect::<Vec<_>>());
    assert!(second.all_ok());
    assert_eq!(second.cells.iter().filter(|c| !c.from_ledger).count(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_context_discards_stale_ledger() {
    let dir = temp_dir("ctx");
    let executed = Arc::new(AtomicUsize::new(0));
    square_sweep(&dir, false, 1, &executed);

    // Same sweep name, different context (think `--quick` vs full): the
    // old ledger must not satisfy the resume.
    let executed2 = Arc::new(AtomicUsize::new(0));
    let e2 = Arc::clone(&executed2);
    let out: SweepOutcome<i64> = run_sweep(
        "toy",
        "squares-v2",
        &opts(&dir, true, 1),
        (0..10).collect(),
        |c| format!("cell={c}"),
        move |c: i64| {
            e2.fetch_add(1, Ordering::SeqCst);
            c * c
        },
    );
    assert_eq!(executed2.load(Ordering::SeqCst), 10, "every cell re-ran");
    assert!(out.cells.iter().all(|c| !c.from_ledger));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merged_rows_identical_across_worker_counts_and_resume() {
    // Canonical-JSON byte identity of the merged rows: 1 worker
    // uninterrupted vs 4 workers resumed from a truncated ledger.
    let dir_a = temp_dir("ident-a");
    let dir_b = temp_dir("ident-b");
    let executed = Arc::new(AtomicUsize::new(0));
    let a = square_sweep(&dir_a, false, 1, &executed);
    let b1 = square_sweep(&dir_b, false, 4, &executed);
    assert_eq!(
        serde_json::to_string(&a.rows).unwrap(),
        serde_json::to_string(&b1.rows).unwrap()
    );

    // Truncate b's ledger to header + 3 entries, resume with 4 workers.
    let ledger = dir_b.join("toy.cells.jsonl");
    let contents = std::fs::read_to_string(&ledger).unwrap();
    let mut kept = contents.lines().take(4).collect::<Vec<_>>().join("\n");
    kept.push('\n');
    std::fs::write(&ledger, kept).unwrap();
    let b2 = square_sweep(&dir_b, true, 4, &executed);
    assert_eq!(
        serde_json::to_string(&a.rows).unwrap(),
        serde_json::to_string(&b2.rows).unwrap()
    );
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
